//! Durable maintenance: a [`Database`] fronted by a write-ahead log and
//! periodic checkpoints, with crash recovery replayed through the
//! *incremental* maintenance engine.
//!
//! # Protocol
//!
//! Every base-table change flows through [`DurableDatabase::insert`] /
//! [`DurableDatabase::delete`] / [`DurableDatabase::update`]:
//!
//! 1. the batch is validated and applied to the in-memory catalog
//!    ([`Database::apply_insert`] — constraints enforced, delta computed),
//! 2. the applied delta is appended to the WAL as a [`REC_UPDATE`] record
//!    and flushed per [`ojv_durability::FsyncPolicy`],
//! 3. eager views are maintained incrementally and deferred views enqueue
//!    the delta.
//!
//! A crash after step 2 therefore loses nothing: recovery replays the
//! logged delta through the same `maintain` path the live system uses, so
//! the recovered stores are *byte-identical* to an uncrashed twin — not
//! merely set-equal. A crash between 1 and 2 loses only RAM state that was
//! never acknowledged as durable. If step 2 *fails* (I/O error, framing
//! limit), RAM is ahead of the log and recovery could never reproduce it:
//! the database **poisons** itself — every later durable operation,
//! including `checkpoint`, returns [`CoreError::Poisoned`] — so the
//! diverged image can neither grow nor be snapshotted; reopening from the
//! log lands on the last consistent state.
//!
//! Recovery also guards against the log having been cut *below* the
//! checkpoint's LSN (a corrupt record in a segment that survived pruning):
//! the WAL then resumes at `checkpoint_lsn + 1` via [`Wal::begin_after`]
//! instead of re-issuing LSNs the replay filter would silently skip.
//!
//! [`DurableDatabase::checkpoint`] serializes the catalog and every view
//! store (rows in heap order plus the canonical count-index snapshot) to an
//! atomic snapshot stamped with the WAL high-water LSN, then prunes WAL
//! segments and older checkpoints. DDL ([`DurableDatabase::create_view`],
//! [`DurableDatabase::create_deferred_view`]) checkpoints immediately —
//! view definitions live in snapshots, not the log.
//!
//! # Deferred views
//!
//! A deferred view's *pending queue* is never checkpointed. Its snapshot
//! carries a **refresh watermark**: the LSN of the last update reflected in
//! the view's store. Recovery re-enqueues every logged update with
//! `lsn > watermark`, and replays [`REC_REFRESH`] markers by re-running the
//! deterministic [`DeferredView::refresh`] — so a refresh that was durable
//! before the crash is durable after it, and one that was not is simply
//! re-done from the queue. Replaying the same WAL tail twice (the
//! idempotence the watermark buys) cannot double-apply a batch.

use ojv_durability::{
    is_checkpoint_file, is_segment_file, prune_checkpoints, read_latest_checkpoint,
    write_checkpoint, DurabilityError, Lsn, Vfs, Wal, WalOptions, WalRecord,
};
use ojv_rel::{key_of, put_row, put_str, put_u32, put_u64, ByteReader, Datum, RelError, Row};
use ojv_storage::{
    decode_catalog, decode_update, encode_catalog, encode_update, Catalog, Update, UpdateOp,
};

use crate::database::Database;
use crate::deferred::DeferredView;
use crate::error::{CoreError, Result};
use crate::maintain::MaintenanceReport;
use crate::materialize::MaterializedView;
use crate::policy::MaintenancePolicy;
use crate::view_def::{NamedAtom, ViewDef, ViewExpr};
use ojv_algebra::{CmpOp, JoinKind};

/// WAL record kind: one applied base-table update batch.
/// Payload: `[u8 flags][encoded Update]` (see [`ojv_storage::encode_update`]).
pub const REC_UPDATE: u8 = 1;

/// WAL record kind: a deferred view completed a refresh.
/// Payload: `[str view name][u64 up_to_lsn]`.
pub const REC_REFRESH: u8 = 2;

/// `REC_UPDATE` flag bit: this batch is half of an SQL `UPDATE`
/// decomposition, so replay must disable the §6 FK fast paths exactly as
/// the original run did.
const FLAG_UPDATE_DECOMPOSITION: u8 = 1;

fn codec_err(detail: impl Into<String>) -> CoreError {
    CoreError::Rel(RelError::Codec {
        detail: detail.into(),
    })
}

fn fit_u32(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| codec_err(format!("{what} of {n} exceeds u32 framing")))
}

// ---------------------------------------------------------------------------
// View definition codec
// ---------------------------------------------------------------------------

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from_tag(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return Err(codec_err(format!("unknown comparison tag {other}"))),
    })
}

fn join_tag(kind: JoinKind) -> u8 {
    match kind {
        JoinKind::Inner => 0,
        JoinKind::LeftOuter => 1,
        JoinKind::RightOuter => 2,
        JoinKind::FullOuter => 3,
        JoinKind::LeftSemi => 4,
        JoinKind::LeftAnti => 5,
    }
}

fn join_from_tag(tag: u8) -> Result<JoinKind> {
    Ok(match tag {
        0 => JoinKind::Inner,
        1 => JoinKind::LeftOuter,
        2 => JoinKind::RightOuter,
        3 => JoinKind::FullOuter,
        4 => JoinKind::LeftSemi,
        5 => JoinKind::LeftAnti,
        other => return Err(codec_err(format!("unknown join-kind tag {other}"))),
    })
}

fn put_atom(buf: &mut Vec<u8>, atom: &NamedAtom) -> Result<()> {
    match atom {
        NamedAtom::Cols { left, op, right } => {
            buf.push(0);
            put_str(buf, &left.0)?;
            put_str(buf, &left.1)?;
            buf.push(cmp_tag(*op));
            put_str(buf, &right.0)?;
            put_str(buf, &right.1)?;
        }
        NamedAtom::Const { col, op, value } => {
            buf.push(1);
            put_str(buf, &col.0)?;
            put_str(buf, &col.1)?;
            buf.push(cmp_tag(*op));
            ojv_rel::put_datum(buf, value)?;
        }
        NamedAtom::Between { col, lo, hi } => {
            buf.push(2);
            put_str(buf, &col.0)?;
            put_str(buf, &col.1)?;
            ojv_rel::put_datum(buf, lo)?;
            ojv_rel::put_datum(buf, hi)?;
        }
    }
    Ok(())
}

fn read_atom(r: &mut ByteReader<'_>) -> Result<NamedAtom> {
    let tag = r.u8("atom tag")?;
    Ok(match tag {
        0 => {
            let lt = r.str("atom left table")?.to_string();
            let lc = r.str("atom left column")?.to_string();
            let op = cmp_from_tag(r.u8("atom cmp")?)?;
            let rt = r.str("atom right table")?.to_string();
            let rc = r.str("atom right column")?.to_string();
            NamedAtom::Cols {
                left: (lt, lc),
                op,
                right: (rt, rc),
            }
        }
        1 => {
            let t = r.str("atom table")?.to_string();
            let c = r.str("atom column")?.to_string();
            let op = cmp_from_tag(r.u8("atom cmp")?)?;
            let value = r.datum()?;
            NamedAtom::Const {
                col: (t, c),
                op,
                value,
            }
        }
        2 => {
            let t = r.str("atom table")?.to_string();
            let c = r.str("atom column")?.to_string();
            let lo = r.datum()?;
            let hi = r.datum()?;
            NamedAtom::Between {
                col: (t, c),
                lo,
                hi,
            }
        }
        other => return Err(codec_err(format!("unknown atom tag {other}"))),
    })
}

fn put_atoms(buf: &mut Vec<u8>, atoms: &[NamedAtom]) -> Result<()> {
    put_u32(buf, fit_u32(atoms.len(), "atom count")?);
    for a in atoms {
        put_atom(buf, a)?;
    }
    Ok(())
}

fn read_atoms(r: &mut ByteReader<'_>) -> Result<Vec<NamedAtom>> {
    let n = r.u32("atom count")? as usize; // lint:allow(cast) — u32 widens into usize
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(read_atom(r)?);
    }
    Ok(out)
}

fn put_expr(buf: &mut Vec<u8>, expr: &ViewExpr) -> Result<()> {
    match expr {
        ViewExpr::Table(name) => {
            buf.push(0);
            put_str(buf, name)?;
        }
        ViewExpr::Select(atoms, input) => {
            buf.push(1);
            put_atoms(buf, atoms)?;
            put_expr(buf, input)?;
        }
        ViewExpr::Join(kind, on, left, right) => {
            buf.push(2);
            buf.push(join_tag(*kind));
            put_atoms(buf, on)?;
            put_expr(buf, left)?;
            put_expr(buf, right)?;
        }
    }
    Ok(())
}

fn read_expr(r: &mut ByteReader<'_>) -> Result<ViewExpr> {
    let tag = r.u8("expr tag")?;
    Ok(match tag {
        0 => ViewExpr::Table(r.str("table name")?.to_string()),
        1 => {
            let atoms = read_atoms(r)?;
            let input = read_expr(r)?;
            ViewExpr::Select(atoms, Box::new(input))
        }
        2 => {
            let kind = join_from_tag(r.u8("join kind")?)?;
            let on = read_atoms(r)?;
            let left = read_expr(r)?;
            let right = read_expr(r)?;
            ViewExpr::Join(kind, on, Box::new(left), Box::new(right))
        }
        other => return Err(codec_err(format!("unknown expr tag {other}"))),
    })
}

/// Encode a view definition (name, SPOJ tree, optional projection).
pub fn encode_view_def(def: &ViewDef) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    put_str(&mut buf, def.name())?;
    put_expr(&mut buf, def.expr())?;
    match def.projection() {
        None => buf.push(0),
        Some(cols) => {
            buf.push(1);
            put_u32(&mut buf, fit_u32(cols.len(), "projection count")?);
            for (t, c) in cols {
                put_str(&mut buf, t)?;
                put_str(&mut buf, c)?;
            }
        }
    }
    Ok(buf)
}

/// Decode a view definition, requiring the buffer be fully consumed.
pub fn decode_view_def(data: &[u8]) -> Result<ViewDef> {
    let mut r = ByteReader::new(data);
    let name = r.str("view name")?.to_string();
    let expr = read_expr(&mut r)?;
    let mut def = ViewDef::new(&name, expr);
    if r.u8("projection flag")? != 0 {
        let n = r.u32("projection count")? as usize; // lint:allow(cast) — u32 widens into usize
        let mut cols = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let t = r.str("projection table")?.to_string();
            let c = r.str("projection column")?.to_string();
            cols.push((t, c));
        }
        def = def.with_projection(cols.iter().map(|(t, c)| (t.as_str(), c.as_str())).collect());
    }
    if !r.is_empty() {
        return Err(codec_err(format!(
            "{} trailing bytes after view definition",
            r.remaining()
        )));
    }
    Ok(def)
}

// ---------------------------------------------------------------------------
// State snapshot codec (checkpoint payload)
// ---------------------------------------------------------------------------

type IndexSnapshot = Vec<(Vec<usize>, Vec<(Vec<Datum>, usize)>)>;

struct ViewSection {
    def: ViewDef,
    rows: Vec<Row>,
    indexes: IndexSnapshot,
}

fn put_view_section(buf: &mut Vec<u8>, view: &MaterializedView) -> Result<()> {
    let def_bytes = encode_view_def(view.def())?;
    put_u32(buf, fit_u32(def_bytes.len(), "view def length")?);
    buf.extend_from_slice(&def_bytes);
    let rows = view.wide_rows();
    put_u32(buf, fit_u32(rows.len(), "view row count")?);
    for row in rows {
        put_row(buf, row)?;
    }
    // The count indexes are *derivable* from the rows, but they are part of
    // the state the acceptance tests compare byte-for-byte, so they are in
    // the snapshot — restore rebuilds them and cross-checks (below).
    let indexes = view.store().count_index_snapshot();
    put_u32(buf, fit_u32(indexes.len(), "index count")?);
    for (cols, entries) in &indexes {
        put_u32(buf, fit_u32(cols.len(), "index column count")?);
        for &c in cols {
            put_u32(buf, fit_u32(c, "index column")?);
        }
        put_u32(buf, fit_u32(entries.len(), "index entry count")?);
        for (key, count) in entries {
            put_row(buf, key)?;
            let count = u64::try_from(*count).map_err(|_| codec_err("count exceeds u64"))?;
            put_u64(buf, count);
        }
    }
    Ok(())
}

fn read_view_section(r: &mut ByteReader<'_>) -> Result<ViewSection> {
    let def_len = r.u32("view def length")? as usize; // lint:allow(cast) — u32 widens into usize
    let def = decode_view_def(r.bytes(def_len, "view def")?)?;
    let n_rows = r.u32("view row count")? as usize; // lint:allow(cast) — u32 widens into usize
    let mut rows = Vec::with_capacity(n_rows.min(r.remaining()));
    for _ in 0..n_rows {
        rows.push(r.row()?);
    }
    let n_idx = r.u32("index count")? as usize; // lint:allow(cast) — u32 widens into usize
    let mut indexes = Vec::with_capacity(n_idx.min(r.remaining()));
    for _ in 0..n_idx {
        let n_cols = r.u32("index column count")? as usize; // lint:allow(cast) — u32 widens into usize
        let mut cols = Vec::with_capacity(n_cols.min(r.remaining()));
        for _ in 0..n_cols {
            cols.push(r.u32("index column")? as usize); // lint:allow(cast) — u32 widens into usize
        }
        let n_entries = r.u32("index entry count")? as usize; // lint:allow(cast) — u32 widens into usize
        let mut entries = Vec::with_capacity(n_entries.min(r.remaining()));
        for _ in 0..n_entries {
            let key = r.row()?;
            let count = usize::try_from(r.u64("index count value")?)
                .map_err(|_| codec_err("index count exceeds usize"))?;
            entries.push((key, count));
        }
        indexes.push((cols, entries));
    }
    Ok(ViewSection { def, rows, indexes })
}

struct DecodedState {
    catalog: Catalog,
    views: Vec<ViewSection>,
    deferred: Vec<(ViewSection, Lsn)>,
}

fn encode_state(db: &Database, deferred: &[DurableDeferred]) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    let cat = encode_catalog(db.catalog())?;
    put_u32(&mut buf, fit_u32(cat.len(), "catalog length")?);
    buf.extend_from_slice(&cat);
    let views: Vec<&MaterializedView> = db.views().collect();
    put_u32(&mut buf, fit_u32(views.len(), "view count")?);
    for v in views {
        put_view_section(&mut buf, v)?;
    }
    put_u32(&mut buf, fit_u32(deferred.len(), "deferred view count")?);
    for d in deferred {
        put_view_section(&mut buf, d.dv.view())?;
        put_u64(&mut buf, d.watermark);
    }
    Ok(buf)
}

fn decode_state(data: &[u8]) -> Result<DecodedState> {
    let mut r = ByteReader::new(data);
    let cat_len = r.u32("catalog length")? as usize; // lint:allow(cast) — u32 widens into usize
    let catalog = decode_catalog(r.bytes(cat_len, "catalog")?)?;
    let n_views = r.u32("view count")? as usize; // lint:allow(cast) — u32 widens into usize
    let mut views = Vec::with_capacity(n_views.min(r.remaining()));
    for _ in 0..n_views {
        views.push(read_view_section(&mut r)?);
    }
    let n_def = r.u32("deferred view count")? as usize; // lint:allow(cast) — u32 widens into usize
    let mut deferred = Vec::with_capacity(n_def.min(r.remaining()));
    for _ in 0..n_def {
        let section = read_view_section(&mut r)?;
        let watermark = r.u64("refresh watermark")?;
        deferred.push((section, watermark));
    }
    if !r.is_empty() {
        return Err(codec_err(format!(
            "{} trailing bytes after state snapshot",
            r.remaining()
        )));
    }
    Ok(DecodedState {
        catalog,
        views,
        deferred,
    })
}

/// Encode one shard's full state (catalog + eager views) as a checkpoint
/// payload — the sharded durable layer writes one of these per shard, in
/// the exact format [`DurableDatabase`] uses (deferred section empty).
pub(crate) fn encode_shard_state(db: &Database) -> Result<Vec<u8>> {
    encode_state(db, &[])
}

/// Rebuild one shard from a checkpoint payload written by
/// [`encode_shard_state`]: restore the catalog and views, anchor the
/// snapshot-LSN clock at `lsn`.
pub(crate) fn restore_shard_state(
    data: &[u8],
    policy: MaintenancePolicy,
    lsn: Lsn,
) -> Result<Database> {
    let state = decode_state(data)?;
    if !state.deferred.is_empty() {
        return Err(CoreError::Durability(DurabilityError::Corrupt {
            file: "checkpoint".to_string(),
            detail: "shard checkpoints cannot carry deferred views".to_string(),
        }));
    }
    let mut db = Database::new(state.catalog);
    db.policy = policy;
    db.set_commit_lsn(lsn);
    for section in state.views {
        let view = restore_view(db.catalog(), section)?;
        db.install_view(view)?;
    }
    Ok(db)
}

/// Rebuild a view from a snapshot section and cross-check the rebuilt count
/// indexes against the checkpointed ones (a cheap end-to-end integrity
/// check: rows and indexes were serialized independently).
fn restore_view(catalog: &Catalog, section: ViewSection) -> Result<MaterializedView> {
    let view = MaterializedView::restore(catalog, section.def, section.rows)?;
    if view.store().count_index_snapshot() != section.indexes {
        return Err(CoreError::Durability(DurabilityError::Corrupt {
            file: "checkpoint".to_string(),
            detail: format!(
                "count indexes of view {} do not match its checkpointed rows",
                view.name()
            ),
        }));
    }
    Ok(view)
}

// ---------------------------------------------------------------------------
// DurableDatabase
// ---------------------------------------------------------------------------

struct DurableDeferred {
    dv: DeferredView,
    /// LSN of the newest WAL record reflected in the view's store (set by
    /// refresh / view creation). Pending entries are exactly the logged
    /// updates with a greater LSN.
    watermark: Lsn,
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// High-water LSN of the checkpoint the state was loaded from.
    pub checkpoint_lsn: Lsn,
    /// `REC_UPDATE` records re-applied to the catalog and eager views.
    pub replayed_updates: usize,
    /// Update batches re-enqueued onto deferred views' pending queues.
    pub reenqueued: usize,
    /// `REC_REFRESH` markers replayed through [`DeferredView::refresh`].
    pub replayed_refreshes: usize,
    /// Newest LSN in the recovered log (0 if the log was empty).
    pub last_lsn: Lsn,
    /// Why the WAL tail was cut, when a torn/corrupt record was found.
    pub wal_truncated: Option<String>,
}

/// A [`Database`] whose updates survive crashes: WAL + checkpoints + replay.
///
/// Generic over the [`Vfs`] so tests drive it against
/// [`ojv_durability::MemVfs`] (and the testkit's fault injector) while
/// production uses [`ojv_durability::DiskVfs`].
pub struct DurableDatabase<V: Vfs> {
    vfs: V,
    wal: Wal,
    db: Database,
    deferred: Vec<DurableDeferred>,
    checkpoint_lsn: Lsn,
    /// Set when a durable write failed after an in-memory mutation: RAM is
    /// ahead of the log, so further durable operations are refused (see
    /// [`CoreError::Poisoned`]).
    poisoned: Option<String>,
}

impl<V: Vfs> DurableDatabase<V> {
    /// Initialize a fresh durable database in an empty directory: writes the
    /// first WAL segment and a checkpoint of the starting catalog.
    ///
    /// Fails if the directory already holds WAL segments or checkpoints —
    /// overwriting the first segment of an existing database while leaving
    /// its later segments and snapshots in place would create a
    /// mixed-generation directory a later [`DurableDatabase::open`] could
    /// misread. Use `open` for existing directories.
    pub fn create(mut vfs: V, catalog: Catalog, policy: MaintenancePolicy) -> Result<Self> {
        if let Some(name) = vfs
            .list()?
            .into_iter()
            .find(|n| is_segment_file(n) || is_checkpoint_file(n))
        {
            return Err(CoreError::Durability(DurabilityError::Corrupt {
                file: name,
                detail: "directory already holds a durable database; open() it instead of \
                         create()-ing over it"
                    .to_string(),
            }));
        }
        let opts = WalOptions {
            policy: policy.fsync,
            ..WalOptions::default()
        };
        let wal = Wal::create(&mut vfs, opts, 1)?;
        let mut db = Database::new(catalog);
        db.policy = policy;
        let mut this = DurableDatabase {
            vfs,
            wal,
            db,
            deferred: Vec::new(),
            checkpoint_lsn: 0,
            poisoned: None,
        };
        this.checkpoint()?;
        Ok(this)
    }

    /// Open an existing durable database: load the latest valid checkpoint,
    /// scan the WAL tail (stopping at the first torn or corrupt record),
    /// and replay the tail through the incremental maintenance engine.
    ///
    /// `policy` must match the one the log was written under for the replay
    /// to reproduce the original plans (the results are identical under any
    /// policy; the *reports* and costs differ).
    pub fn open(mut vfs: V, policy: MaintenancePolicy) -> Result<(Self, RecoveryReport)> {
        let ckpt = read_latest_checkpoint(&mut vfs)?.ok_or_else(|| {
            CoreError::Durability(DurabilityError::Corrupt {
                file: "checkpoint".to_string(),
                detail: "no valid checkpoint found (directory never initialized?)".to_string(),
            })
        })?;
        let state = decode_state(&ckpt.payload)?;
        let opts = WalOptions {
            policy: policy.fsync,
            ..WalOptions::default()
        };
        let (mut wal, scan) = Wal::open(&mut vfs, opts, ckpt.lsn + 1)?;
        if wal.next_lsn() <= ckpt.lsn {
            // A corrupt record *below* the checkpoint LSN cut the scan short
            // (its segment survives pruning while any deferred watermark is
            // older). Appending at an already-checkpointed LSN would create
            // records the `lsn > ckpt_lsn` replay filter silently skips on
            // the next open — acknowledged data lost. The checkpoint vouches
            // for every LSN at or below its own, so resume the log past it;
            // surviving earlier records stay on disk for deferred-queue
            // rebuilds.
            wal.begin_after(&mut vfs, ckpt.lsn + 1)?;
        }

        let mut db = Database::new(state.catalog);
        db.policy = policy;
        // Anchor the snapshot-LSN clock at the checkpoint before installing
        // views, so restored chains register at the checkpoint LSN and
        // replayed batches land on the same LSNs the original run produced.
        db.set_commit_lsn(ckpt.lsn);
        for section in state.views {
            let view = restore_view(db.catalog(), section)?;
            db.install_view(view)?;
        }
        let mut deferred = Vec::with_capacity(state.deferred.len());
        for (section, watermark) in state.deferred {
            let view = restore_view(db.catalog(), section)?;
            deferred.push(DurableDeferred {
                dv: DeferredView::new(view),
                watermark,
            });
        }

        let mut report = RecoveryReport {
            checkpoint_lsn: ckpt.lsn,
            replayed_updates: 0,
            reenqueued: 0,
            replayed_refreshes: 0,
            last_lsn: wal.last_lsn(),
            wal_truncated: scan.truncated.map(|t| t.reason),
        };
        for rec in &scan.records {
            Self::replay_record(&mut db, &mut deferred, ckpt.lsn, rec, &mut report)?;
        }

        Ok((
            DurableDatabase {
                vfs,
                wal,
                db,
                deferred,
                checkpoint_lsn: ckpt.lsn,
                poisoned: None,
            },
            report,
        ))
    }

    fn replay_record(
        db: &mut Database,
        deferred: &mut [DurableDeferred],
        ckpt_lsn: Lsn,
        rec: &WalRecord,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        match rec.kind {
            REC_UPDATE => {
                let mut r = ByteReader::new(&rec.payload);
                let flags = r.u8("update flags").map_err(CoreError::Rel)?;
                let update = decode_update(rec.payload.get(1..).unwrap_or(&[]), db.catalog())?;
                if rec.lsn > ckpt_lsn {
                    // Not reflected in the checkpoint: re-apply to the
                    // catalog and re-run eager maintenance, exactly as the
                    // original call did.
                    match update.op {
                        UpdateOp::Insert => {
                            db.catalog_mut()
                                .insert(&update.table, update.rows.rows().to_vec())?;
                        }
                        UpdateOp::Delete => {
                            let key_cols = db.catalog().table(&update.table)?.key_cols().to_vec();
                            let keys: Vec<Vec<Datum>> = update
                                .rows
                                .rows()
                                .iter()
                                .map(|row| key_of(row, &key_cols))
                                .collect();
                            db.catalog_mut().delete(&update.table, &keys)?;
                        }
                    }
                    let saved = db.policy;
                    if flags & FLAG_UPDATE_DECOMPOSITION != 0 {
                        db.policy.update_decomposition = true;
                    }
                    let maintained = db.maintain_update_at(&update, rec.lsn);
                    db.policy = saved;
                    maintained?;
                    report.replayed_updates += 1;
                }
                // Regardless of the checkpoint: batches newer than a
                // deferred view's refresh watermark belong on its queue
                // (queues are rebuilt from the log, never checkpointed).
                for d in deferred.iter_mut() {
                    if rec.lsn > d.watermark {
                        let before = d.dv.pending_len();
                        d.dv.enqueue(&update);
                        report.reenqueued += d.dv.pending_len() - before;
                    }
                }
            }
            REC_REFRESH => {
                let mut r = ByteReader::new(&rec.payload);
                let name = r
                    .str("refresh view name")
                    .map_err(CoreError::Rel)?
                    .to_string();
                let up_to = r.u64("refresh up-to lsn").map_err(CoreError::Rel)?;
                if rec.lsn > ckpt_lsn {
                    let policy = db.policy;
                    let d = deferred
                        .iter_mut()
                        .find(|d| d.dv.view().name() == name)
                        .ok_or(CoreError::UnknownView { view: name })?;
                    // Deterministic re-run: the queue holds exactly the
                    // batches the original refresh consumed, and the catalog
                    // is in the state it was in at the marker's position.
                    d.dv.refresh(db.catalog(), &policy)?;
                    d.watermark = up_to;
                    report.replayed_refreshes += 1;
                }
            }
            other => {
                return Err(CoreError::Durability(DurabilityError::Corrupt {
                    file: "wal".to_string(),
                    detail: format!("unknown WAL record kind {other} at lsn {}", rec.lsn),
                }))
            }
        }
        Ok(())
    }

    /// Refuse the operation if an earlier durable-write failure left RAM
    /// ahead of the log.
    fn check_usable(&self) -> Result<()> {
        match &self.poisoned {
            Some(detail) => Err(CoreError::Poisoned {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Record that a durable write failed after an in-memory mutation. The
    /// live state can no longer be reproduced by recovery (and later logged
    /// deltas would be computed against a catalog replay never sees), so
    /// every subsequent durable operation — including `checkpoint`, which
    /// would persist the diverged state — is rejected from here on.
    fn poison(&mut self, during: &str, err: CoreError) -> CoreError {
        if self.poisoned.is_none() {
            self.poisoned = Some(format!("{during} failed: {err}"));
        }
        err
    }

    /// Append an applied update batch to the WAL. The catalog mutation has
    /// already happened by the time this runs, so any failure here poisons
    /// the database.
    fn log_update(&mut self, update: &Update, flags: u8) -> Result<Lsn> {
        let result = (|| {
            let body = encode_update(update)?;
            let mut payload = Vec::with_capacity(1 + body.len());
            payload.push(flags);
            payload.extend_from_slice(&body);
            Ok(self.wal.append(&mut self.vfs, REC_UPDATE, &payload)?)
        })();
        result.map_err(|e| self.poison("WAL append of an applied update", e))
    }

    fn enqueue_deferred(&mut self, update: &Update) {
        for d in &mut self.deferred {
            d.dv.enqueue(update);
        }
    }

    /// Durable insert: apply to the catalog, log, maintain eager views,
    /// enqueue on deferred views.
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<MaintenanceReport>> {
        self.check_usable()?;
        let update = self.db.apply_insert(table, rows)?;
        let lsn = self.log_update(&update, 0)?;
        let reports = self.db.maintain_update_at(&update, lsn)?;
        self.enqueue_deferred(&update);
        Ok(reports)
    }

    /// Durable delete by unique key (see [`DurableDatabase::insert`]).
    pub fn delete(&mut self, table: &str, keys: &[Vec<Datum>]) -> Result<Vec<MaintenanceReport>> {
        self.check_usable()?;
        let update = self.db.apply_delete(table, keys)?;
        let lsn = self.log_update(&update, 0)?;
        let reports = self.db.maintain_update_at(&update, lsn)?;
        self.enqueue_deferred(&update);
        Ok(reports)
    }

    /// Durable SQL-style `UPDATE` (delete + insert, logged with the
    /// decomposition flag so replay also disables the §6 fast paths).
    pub fn update(
        &mut self,
        table: &str,
        keys: &[Vec<Datum>],
        new_rows: Vec<Row>,
    ) -> Result<Vec<MaintenanceReport>> {
        self.check_usable()?;
        let saved = self.db.policy;
        self.db.policy.update_decomposition = true;
        let result = (|| {
            let del = self.db.apply_delete(table, keys)?;
            let del_lsn = self.log_update(&del, FLAG_UPDATE_DECOMPOSITION)?;
            let mut reports = self.db.maintain_update_at(&del, del_lsn)?;
            self.enqueue_deferred(&del);
            let ins = self.db.apply_insert(table, new_rows)?;
            let ins_lsn = self.log_update(&ins, FLAG_UPDATE_DECOMPOSITION)?;
            reports.extend(self.db.maintain_update_at(&ins, ins_lsn)?);
            self.enqueue_deferred(&ins);
            Ok(reports)
        })();
        self.db.policy = saved;
        result
    }

    /// Create an eagerly-maintained view and checkpoint (definitions live
    /// in snapshots, not the log).
    pub fn create_view(&mut self, def: ViewDef) -> Result<()> {
        self.check_usable()?;
        self.db.create_view(def)?;
        self.checkpoint()
            .map_err(|e| self.poison("checkpoint after view creation", e))?;
        Ok(())
    }

    /// Create a deferred view, watermarked at the current log position, and
    /// checkpoint.
    pub fn create_deferred_view(&mut self, def: ViewDef) -> Result<()> {
        self.check_usable()?;
        if self.db.view(def.name()).is_some()
            || self
                .deferred
                .iter()
                .any(|d| d.dv.view().name() == def.name())
        {
            return Err(CoreError::DuplicateView {
                view: def.name().to_string(),
            });
        }
        let view = MaterializedView::create(self.db.catalog(), def)?;
        self.deferred.push(DurableDeferred {
            dv: DeferredView::new(view),
            watermark: self.wal.last_lsn(),
        });
        self.checkpoint()
            .map_err(|e| self.poison("checkpoint after view creation", e))?;
        Ok(())
    }

    /// Refresh a deferred view and log the completion marker: after this
    /// returns, a crash-and-recover re-runs the refresh from the same queue
    /// instead of losing it, and a *second* recovery cannot apply the
    /// consumed batches again (watermark idempotence).
    pub fn refresh(&mut self, view: &str) -> Result<Vec<MaintenanceReport>> {
        self.check_usable()?;
        let policy = self.db.policy;
        let d = self
            .deferred
            .iter_mut()
            .find(|d| d.dv.view().name() == view)
            .ok_or_else(|| CoreError::UnknownView {
                view: view.to_string(),
            })?;
        let reports = d.dv.refresh(self.db.catalog(), &policy)?;
        let up_to = self.wal.last_lsn();
        let mut payload = Vec::new();
        put_str(&mut payload, view)?;
        put_u64(&mut payload, up_to);
        // The refresh above already consumed the pending queue and mutated
        // the store; if the completion marker cannot be logged, the stale
        // watermark must never reach a checkpoint (recovery would re-apply
        // the consumed batches on top of the refreshed rows) — poison.
        self.wal
            .append(&mut self.vfs, REC_REFRESH, &payload)
            .map_err(|e| self.poison("WAL append of a refresh marker", CoreError::Durability(e)))?;
        // Re-borrow: the append above needed `&mut self.vfs`.
        if let Some(d) = self
            .deferred
            .iter_mut()
            .find(|d| d.dv.view().name() == view)
        {
            d.watermark = up_to;
        }
        Ok(reports)
    }

    /// Write a checkpoint of the full in-memory state, then prune WAL
    /// segments and checkpoints that no recovery can need: records at or
    /// below both the checkpoint LSN and every deferred watermark.
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        self.check_usable()?;
        self.wal.sync(&mut self.vfs)?;
        let lsn = self.wal.last_lsn();
        let payload = encode_state(&self.db, &self.deferred)?;
        write_checkpoint(&mut self.vfs, lsn, &payload)?;
        self.checkpoint_lsn = lsn;
        let floor = self
            .deferred
            .iter()
            .map(|d| d.watermark)
            .fold(lsn, Lsn::min);
        self.wal.prune_below(&mut self.vfs, floor + 1)?;
        prune_checkpoints(&mut self.vfs, lsn)?;
        Ok(lsn)
    }

    /// Flush every outstanding WAL record to stable storage (useful under
    /// [`ojv_durability::FsyncPolicy::EveryN`] before an intentional stop).
    pub fn sync(&mut self) -> Result<()> {
        Ok(self.wal.sync(&mut self.vfs)?)
    }

    /// Canonical encoding of the full in-memory state (catalog, eager view
    /// stores and count indexes, deferred stores and watermarks). Two
    /// databases with byte-equal `state_bytes` hold identical state — the
    /// crash tests compare a recovered database against its uncrashed twin
    /// with exactly this.
    pub fn state_bytes(&self) -> Result<Vec<u8>> {
        encode_state(&self.db, &self.deferred)
    }

    /// The wrapped in-memory database (catalog and eager views).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Attach a commit observer to the wrapped database (see
    /// [`Database::attach_commit_observer`]). Under the durable layer the
    /// observer sees *WAL* LSNs, so a change-feed cursor is a durable
    /// position: after a crash and recovery, re-subscribing from the last
    /// drained LSN resumes exactly where the feed left off.
    pub fn attach_commit_observer(
        &mut self,
        obs: std::sync::Arc<dyn crate::snapshot::CommitObserver>,
    ) {
        self.db.attach_commit_observer(obs);
    }

    /// Detach the commit observer, if any.
    pub fn detach_commit_observer(&mut self) {
        self.db.detach_commit_observer();
    }

    /// The shared snapshot registry of the wrapped database. Snapshot LSNs
    /// are WAL LSNs here: a pin at LSN `n` is the view state as of durable
    /// LSN `n`.
    pub fn snapshots(&self) -> &crate::snapshot::SnapshotRegistry {
        self.db.snapshots()
    }

    /// Pin a consistent snapshot of every eager view at the newest durable
    /// LSN.
    pub fn snapshot(&self) -> Result<crate::snapshot::Snapshot> {
        self.db.snapshot()
    }

    /// Pin a consistent snapshot as of durable LSN `lsn`.
    pub fn snapshot_at(&self, lsn: Lsn) -> Result<crate::snapshot::Snapshot> {
        self.db.snapshot_at(lsn)
    }

    /// An eager view by name.
    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        self.db.view(name)
    }

    /// A deferred view by name (possibly stale; see
    /// [`DurableDatabase::refresh`]).
    pub fn deferred_view(&self, name: &str) -> Option<&DeferredView> {
        self.deferred
            .iter()
            .find(|d| d.dv.view().name() == name)
            .map(|d| &d.dv)
    }

    /// Refresh watermark of a deferred view.
    pub fn watermark(&self, name: &str) -> Option<Lsn> {
        self.deferred
            .iter()
            .find(|d| d.dv.view().name() == name)
            .map(|d| d.watermark)
    }

    /// Newest LSN in the log.
    pub fn last_lsn(&self) -> Lsn {
        self.wal.last_lsn()
    }

    /// High-water LSN of the newest checkpoint.
    pub fn checkpoint_lsn(&self) -> Lsn {
        self.checkpoint_lsn
    }

    /// Why the database refuses durable operations, if a durable write
    /// failed after an in-memory mutation (see [`CoreError::Poisoned`]).
    pub fn poison_reason(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// The underlying virtual filesystem (tests inspect files directly).
    pub fn vfs(&self) -> &V {
        &self.vfs
    }

    /// Consume the database, returning the filesystem — the fault-injection
    /// tests "crash" by dropping the database and keeping only the bytes.
    pub fn into_vfs(self) -> V {
        self.vfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use ojv_durability::{FsyncPolicy, MemVfs};

    fn policy() -> MaintenancePolicy {
        MaintenancePolicy::default()
    }

    fn seeded() -> Catalog {
        let mut c = example1_catalog();
        populate_example1(&mut c, 6, 9);
        c
    }

    #[test]
    fn view_def_codec_round_trip() {
        let defs = [
            oj_view_def(),
            oj_view_def().with_projection(vec![("part", "p_partkey"), ("orders", "o_orderkey")]),
            ViewDef::new(
                "sel",
                ViewExpr::select(
                    vec![
                        crate::view_def::col_cmp("part", "p_partkey", CmpOp::Lt, 100i64),
                        crate::view_def::col_between("part", "p_retailprice", 1.0, 9.0),
                    ],
                    ViewExpr::table("part"),
                ),
            ),
        ];
        for def in defs {
            let bytes = encode_view_def(&def).unwrap();
            assert_eq!(decode_view_def(&bytes).unwrap(), def);
        }
        assert!(decode_view_def(&[]).is_err());
    }

    #[test]
    fn create_insert_reopen_is_byte_identical() {
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        d.create_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        d.delete("lineitem", &[vec![Datum::Int(3), Datum::Int(1)]])
            .unwrap();
        let expected = d.state_bytes().unwrap();
        let vfs = d.into_vfs(); // crash: keep only the (synced) bytes

        let (r, report) = DurableDatabase::open(vfs, policy()).unwrap();
        assert_eq!(r.state_bytes().unwrap(), expected);
        assert_eq!(report.replayed_updates, 2);
        assert!(report.wal_truncated.is_none());
    }

    #[test]
    fn checkpoint_bounds_replay() {
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        d.create_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        d.checkpoint().unwrap();
        d.insert("lineitem", vec![lineitem_row(6, 9, 5, 1, 2.0)])
            .unwrap();
        let expected = d.state_bytes().unwrap();
        let (r, report) = DurableDatabase::open(d.into_vfs(), policy()).unwrap();
        assert_eq!(report.replayed_updates, 1, "only the post-checkpoint batch");
        assert_eq!(r.state_bytes().unwrap(), expected);
    }

    #[test]
    fn update_decomposition_flag_survives_replay() {
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        d.create_view(oj_view_def()).unwrap();
        d.update(
            "lineitem",
            &[vec![Datum::Int(2), Datum::Int(1)]],
            vec![lineitem_row(2, 1, 3, 99, 1.0)],
        )
        .unwrap();
        let expected = d.state_bytes().unwrap();
        let (r, report) = DurableDatabase::open(d.into_vfs(), policy()).unwrap();
        assert_eq!(report.replayed_updates, 2);
        assert_eq!(r.state_bytes().unwrap(), expected);
        assert!(crate::maintain::verify_against_recompute(
            r.view("oj_view").unwrap(),
            r.database().catalog()
        ));
    }

    #[test]
    fn deferred_queue_rebuilds_from_wal() {
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        d.create_deferred_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        d.insert("lineitem", vec![lineitem_row(6, 9, 5, 1, 2.0)])
            .unwrap();
        assert_eq!(d.deferred_view("oj_view").unwrap().pending_len(), 2);
        let expected = d.state_bytes().unwrap();

        let (r, report) = DurableDatabase::open(d.into_vfs(), policy()).unwrap();
        // Pending queues are not checkpointed: both batches re-enqueue.
        assert_eq!(report.reenqueued, 2);
        assert_eq!(r.deferred_view("oj_view").unwrap().pending_len(), 2);
        assert_eq!(r.state_bytes().unwrap(), expected);
    }

    #[test]
    fn refresh_watermark_is_idempotent_across_recoveries() {
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        d.create_deferred_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        d.refresh("oj_view").unwrap();
        let expected = d.state_bytes().unwrap();

        // First recovery: the refresh marker replays the (re-enqueued)
        // batch; the result matches the pre-crash state.
        let (r1, rep1) = DurableDatabase::open(d.into_vfs(), policy()).unwrap();
        assert_eq!(rep1.replayed_refreshes, 1);
        assert!(r1.deferred_view("oj_view").unwrap().is_fresh());
        assert_eq!(r1.state_bytes().unwrap(), expected);

        // Second recovery over the *same* log: the watermark prevents the
        // consumed batch from being applied twice.
        let (r2, rep2) = DurableDatabase::open(r1.into_vfs(), policy()).unwrap();
        assert_eq!(rep2.replayed_refreshes, 1);
        assert_eq!(r2.state_bytes().unwrap(), expected);
        assert!(crate::maintain::verify_against_recompute(
            r2.deferred_view("oj_view").unwrap().view(),
            r2.database().catalog()
        ));
    }

    #[test]
    fn checkpoint_after_refresh_skips_marker_replay() {
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        d.create_deferred_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        d.refresh("oj_view").unwrap();
        d.checkpoint().unwrap();
        let expected = d.state_bytes().unwrap();
        let (r, report) = DurableDatabase::open(d.into_vfs(), policy()).unwrap();
        assert_eq!(report.replayed_refreshes, 0, "marker is pre-checkpoint");
        assert_eq!(report.reenqueued, 0, "batch is below the watermark");
        assert_eq!(r.state_bytes().unwrap(), expected);
    }

    /// Flip one bit in the payload of the last record of the newest WAL
    /// segment (rewriting the file durably, as media corruption would).
    fn corrupt_newest_segment_tail(vfs: &mut MemVfs) {
        let segment = vfs
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| ojv_durability::is_segment_file(n))
            .max()
            .expect("a live WAL segment");
        let mut data = vfs.read(&segment).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x40;
        vfs.create(&segment).unwrap();
        vfs.append(&segment, &data).unwrap();
        vfs.sync(&segment).unwrap();
    }

    #[test]
    fn wal_truncated_below_checkpoint_resumes_past_it() {
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        d.create_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        d.checkpoint().unwrap();
        let expected = d.state_bytes().unwrap();
        let ckpt_lsn = d.checkpoint_lsn();
        assert_eq!(d.last_lsn(), ckpt_lsn, "log tail is below the checkpoint");
        let mut vfs = d.into_vfs();
        // Corrupt the record at the checkpoint LSN itself: the scan cuts the
        // log to *below* the checkpoint.
        corrupt_newest_segment_tail(&mut vfs);

        let (mut r, report) = DurableDatabase::open(vfs, policy()).unwrap();
        assert!(report.wal_truncated.is_some());
        assert_eq!(report.replayed_updates, 0);
        // The checkpoint vouches for the lost record; state is intact and
        // the log resumed past the checkpoint, not inside it.
        assert_eq!(r.state_bytes().unwrap(), expected);
        assert_eq!(r.last_lsn(), ckpt_lsn);

        // The regression: a post-recovery write must get an LSN above the
        // checkpoint, so the *next* recovery replays it instead of silently
        // skipping it.
        r.insert("lineitem", vec![lineitem_row(6, 9, 5, 1, 2.0)])
            .unwrap();
        assert!(r.last_lsn() > ckpt_lsn);
        let expected2 = r.state_bytes().unwrap();
        let (r2, rep2) = DurableDatabase::open(r.into_vfs(), policy()).unwrap();
        assert_eq!(rep2.replayed_updates, 1, "post-recovery write must replay");
        assert_eq!(r2.state_bytes().unwrap(), expected2);
    }

    #[test]
    fn create_refuses_existing_database_directory() {
        let d = DurableDatabase::create(MemVfs::new(), seeded(), policy()).unwrap();
        let vfs = d.into_vfs();
        assert!(matches!(
            DurableDatabase::create(vfs, seeded(), policy()),
            Err(CoreError::Durability(DurabilityError::Corrupt { .. }))
        ));
    }

    /// [`MemVfs`] wrapper whose `append` fails while the shared switch is
    /// on — the injection point for write-path poisoning tests.
    struct FlakyVfs {
        inner: MemVfs,
        fail_appends: std::rc::Rc<std::cell::Cell<bool>>,
    }

    impl FlakyVfs {
        fn new() -> (Self, std::rc::Rc<std::cell::Cell<bool>>) {
            let fail = std::rc::Rc::new(std::cell::Cell::new(false));
            (
                FlakyVfs {
                    inner: MemVfs::new(),
                    fail_appends: fail.clone(),
                },
                fail,
            )
        }
    }

    type VfsResult<T> = std::result::Result<T, DurabilityError>;

    impl Vfs for FlakyVfs {
        fn list(&self) -> VfsResult<Vec<String>> {
            self.inner.list()
        }
        fn len(&self, name: &str) -> VfsResult<u64> {
            self.inner.len(name)
        }
        fn read(&self, name: &str) -> VfsResult<Vec<u8>> {
            self.inner.read(name)
        }
        fn create(&mut self, name: &str) -> VfsResult<()> {
            self.inner.create(name)
        }
        fn append(&mut self, name: &str, data: &[u8]) -> VfsResult<()> {
            if self.fail_appends.get() {
                return Err(DurabilityError::io("append", name, "injected failure"));
            }
            self.inner.append(name, data)
        }
        fn sync(&mut self, name: &str) -> VfsResult<()> {
            self.inner.sync(name)
        }
        fn truncate(&mut self, name: &str, len: u64) -> VfsResult<()> {
            self.inner.truncate(name, len)
        }
        fn delete(&mut self, name: &str) -> VfsResult<()> {
            self.inner.delete(name)
        }
        fn rename(&mut self, from: &str, to: &str) -> VfsResult<()> {
            self.inner.rename(from, to)
        }
    }

    #[test]
    fn failed_update_append_poisons_the_database() {
        let (vfs, fail) = FlakyVfs::new();
        let mut d = DurableDatabase::create(vfs, seeded(), policy()).unwrap();
        d.create_view(oj_view_def()).unwrap();
        let pre_failure = d.state_bytes().unwrap();

        fail.set(true);
        let err = d
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap_err();
        assert!(matches!(err, CoreError::Durability(_)), "{err}");
        assert!(d.poison_reason().is_some());

        // Even with I/O healthy again, the in-memory image is ahead of the
        // log: every durable operation — above all `checkpoint`, which
        // would persist the divergence — must be refused.
        fail.set(false);
        assert!(matches!(
            d.insert("lineitem", vec![lineitem_row(6, 9, 5, 1, 2.0)]),
            Err(CoreError::Poisoned { .. })
        ));
        assert!(matches!(
            d.delete("lineitem", &[vec![Datum::Int(2), Datum::Int(1)]]),
            Err(CoreError::Poisoned { .. })
        ));
        assert!(matches!(d.checkpoint(), Err(CoreError::Poisoned { .. })));
        assert!(matches!(
            d.refresh("anything"),
            Err(CoreError::Poisoned { .. })
        ));

        // Reopening from the log lands on the last consistent state: the
        // half-applied insert never happened.
        let (r, _) = DurableDatabase::open(d.into_vfs(), policy()).unwrap();
        assert_eq!(r.state_bytes().unwrap(), pre_failure);
    }

    #[test]
    fn failed_refresh_marker_append_poisons_the_database() {
        let (vfs, fail) = FlakyVfs::new();
        let mut d = DurableDatabase::create(vfs, seeded(), policy()).unwrap();
        d.create_deferred_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let pre_refresh = d.state_bytes().unwrap();

        fail.set(true);
        assert!(d.refresh("oj_view").is_err());
        fail.set(false);
        // The store was refreshed but the watermark marker never made the
        // log: checkpointing now would make recovery double-apply the
        // consumed batch, so the database must refuse.
        assert!(matches!(d.checkpoint(), Err(CoreError::Poisoned { .. })));

        // Recovery rewinds to the pre-refresh state, batch still pending.
        let (r, _) = DurableDatabase::open(d.into_vfs(), policy()).unwrap();
        assert_eq!(r.state_bytes().unwrap(), pre_refresh);
        assert_eq!(r.deferred_view("oj_view").unwrap().pending_len(), 1);
    }

    #[test]
    fn open_without_checkpoint_is_an_error() {
        assert!(matches!(
            DurableDatabase::open(MemVfs::new(), policy()),
            Err(CoreError::Durability(DurabilityError::Corrupt { .. }))
        ));
    }

    #[test]
    fn fsync_never_relies_on_explicit_sync() {
        let mut p = policy();
        p.fsync = FsyncPolicy::Never;
        let mut d = DurableDatabase::create(MemVfs::new(), seeded(), p).unwrap();
        d.create_view(oj_view_def()).unwrap();
        d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let expected = d.state_bytes().unwrap();
        d.sync().unwrap();
        let (r, _) = DurableDatabase::open(d.into_vfs(), p).unwrap();
        assert_eq!(r.state_bytes().unwrap(), expected);
    }
}
