//! View matching for outer-join views — a sound subset of the companion
//! algorithm the paper builds on (Larson & Zhou, "View matching for
//! outer-join views", VLDB 2005, reference \[6\]).
//!
//! The paper's introduction frames materialized-view support as two
//! subproblems: *view matching* ("whether and how part or all of a query can
//! be computed from a view") and *incremental maintenance*. This module
//! implements the matching side for the class both papers share: the query
//! and the view are SPOJ expressions, compared through their
//! join-disjunctive normal forms.
//!
//! A query `Q` matches a view `V` when the rows of every `Q`-term can be
//! carved out of `V`'s stored rows with a *compensation filter* — a
//! null-pattern predicate (`nn(T_i) ∧ n(U−T_i)`) selecting the term's rows
//! plus any extra conjuncts of `Q` not enforced by `V`. The implementation
//! accepts a match only under conditions that make this provably exact:
//!
//! 1. `Q` and `V` reference the same set of tables;
//! 2. every `Q`-term's source set appears among `V`'s terms, and `V`'s term
//!    predicate is a sub-conjunction of `Q`'s (so compensation only *adds*
//!    conjuncts);
//! 3. every `V`-parent of a matched term is itself matched (otherwise `Q`
//!    expects tuples that `V` keeps embedded in rows of a term `Q` lacks);
//! 4. extra conjuncts on a term that has matched children only reference
//!    the child's tables (stricter parent predicates would otherwise change
//!    which child tuples count as orphans);
//! 5. the view's output exposes the query's output columns and a
//!    non-nullable column per table (for the pattern predicates).
//!
//! Queries outside this subset are rejected (`Ok(None)`), never answered
//! incorrectly — the property the test-suite enforces against direct
//! evaluation.

use std::collections::HashMap;

use ojv_algebra::{Atom, CmpOp, ColRef, Pred, TableId, TableSet};
use ojv_rel::{key_of, Relation};
use ojv_storage::Catalog;

use crate::analyze::{analyze, ViewAnalysis};
use crate::error::Result;
use crate::materialize::MaterializedView;
use crate::view_def::ViewDef;

/// A successful match: per-term compensation and the output projection.
#[derive(Debug, Clone)]
pub struct ViewMatch {
    /// For each matched query term: the term's source set (in the *view's*
    /// table numbering) and the extra conjuncts to apply.
    pub compensation: Vec<(TableSet, Pred)>,
    /// Wide-row output columns (view numbering) implementing the query's
    /// projection.
    pub projection: Vec<usize>,
}

/// Try to match `query` against the materialized view. Returns `Ok(None)`
/// when the query cannot (or cannot be proven to) be answered from the view.
pub fn match_view(
    catalog: &Catalog,
    query: &ViewDef,
    view: &MaterializedView,
) -> Result<Option<ViewMatch>> {
    let q = analyze(catalog, query)?;
    let v = &view.analysis;

    // Condition 1: same table set; build the Q→V table renumbering.
    if q.layout.table_count() != v.layout.table_count() {
        return Ok(None);
    }
    let mut remap: HashMap<TableId, TableId> = HashMap::new();
    for (i, slot) in q.layout.slots().iter().enumerate() {
        match v.layout.table_id(&slot.name) {
            Some(vt) => {
                remap.insert(TableId(i as u8), vt);
            }
            None => return Ok(None),
        }
    }

    // Condition 5a: the view must expose a non-nullable column per table so
    // the null-pattern predicates are evaluable on its output.
    for (i, slot) in v.layout.slots().iter().enumerate() {
        let _ = i;
        let has_non_nullable = slot
            .schema
            .columns()
            .iter()
            .enumerate()
            .any(|(ci, c)| !c.nullable && v.projection.contains(&(slot.offset + ci)));
        if !has_non_nullable {
            return Ok(None);
        }
    }

    // Match every query term to a view term by (renumbered) source set.
    let mut matched: Vec<(usize, TableSet, Pred)> = Vec::new(); // (v term idx, sources, extra)
    for qt in &q.terms {
        let sources: TableSet = qt.tables.iter().map(|t| remap[&t]).collect();
        let Some(vi) = v.terms.iter().position(|vt| vt.tables == sources) else {
            return Ok(None);
        };
        let q_atoms: Vec<Atom> = qt
            .pred
            .atoms()
            .iter()
            .map(|a| remap_atom(a, &remap))
            .collect();
        // Condition 2: V's predicate must be a sub-multiset of Q's.
        let Some(extra) = atom_multiset_diff(&q_atoms, v.terms[vi].pred.atoms()) else {
            return Ok(None);
        };
        matched.push((vi, sources, Pred::new(extra)));
    }

    // Condition 3: every V-parent of a matched term is matched.
    let matched_idx: Vec<usize> = matched.iter().map(|(i, _, _)| *i).collect();
    for (vi, _, _) in &matched {
        for p in v.graph.parents(*vi) {
            if !matched_idx.contains(p) {
                return Ok(None);
            }
        }
    }

    // Condition 4: extra conjuncts on a term with matched children must
    // reference only the child's tables (for every matched child).
    for (vi, _, extra) in &matched {
        if extra.is_true() {
            continue;
        }
        for child in v.graph.children(*vi) {
            if let Some((_, child_sources, _)) = matched.iter().find(|(i, _, _)| i == child) {
                let ok = extra
                    .atoms()
                    .iter()
                    .all(|a| a.tables().is_subset_of(*child_sources));
                if !ok {
                    return Ok(None);
                }
            }
        }
    }

    // Condition 5b: the query's output columns must be available in the
    // view's output, and the extra conjuncts evaluable there.
    let mut projection = Vec::with_capacity(q.projection.len());
    for &qg in &q.projection {
        let vg = remap_global(&q, v, &remap, qg);
        if !v.projection.contains(&vg) {
            return Ok(None);
        }
        projection.push(vg);
    }
    for (_, _, extra) in &matched {
        for a in extra.atoms() {
            for cr in a.col_refs() {
                if !v.projection.contains(&v.layout.global(cr)) {
                    return Ok(None);
                }
            }
        }
    }

    Ok(Some(ViewMatch {
        compensation: matched
            .into_iter()
            .map(|(_, sources, extra)| (sources, extra))
            .collect(),
        projection,
    }))
}

/// Execute a match: filter the view's rows with the per-term compensation
/// and project to the query's output.
pub fn execute_match(view: &MaterializedView, m: &ViewMatch) -> Relation {
    let layout = &view.analysis.layout;
    let mut rows = Vec::new();
    for row in view.wide_rows() {
        for (sources, extra) in &m.compensation {
            if layout.row_matches_term(*sources, row)
                && extra
                    .atoms()
                    .iter()
                    .all(|a| ojv_exec::eval::eval_atom(layout, a, row))
            {
                rows.push(key_of(row, &m.projection));
                break; // patterns are disjoint; at most one can match
            }
        }
    }
    let cols: Vec<ojv_rel::Column> = m
        .projection
        .iter()
        .map(|&g| layout.wide_schema().column(g).clone())
        .collect();
    let schema = ojv_rel::Schema::shared(cols).expect("projection columns are distinct");
    Relation::new(schema, rows)
}

fn remap_atom(a: &Atom, remap: &HashMap<TableId, TableId>) -> Atom {
    let rc = |c: ColRef| ColRef::new(remap[&c.table], c.col);
    match a {
        Atom::Cols(x, op, y) => Atom::Cols(rc(*x), *op, rc(*y)),
        Atom::Const(c, op, v) => Atom::Const(rc(*c), *op, v.clone()),
        Atom::Between(c, lo, hi) => Atom::Between(rc(*c), lo.clone(), hi.clone()),
    }
}

fn remap_global(
    q: &ViewAnalysis,
    v: &ViewAnalysis,
    remap: &HashMap<TableId, TableId>,
    qg: usize,
) -> usize {
    // Find the Q table slot containing the global column, translate.
    for (i, slot) in q.layout.slots().iter().enumerate() {
        if qg >= slot.offset && qg < slot.offset + slot.len {
            let vt = remap[&TableId(i as u8)];
            return v.layout.slot(vt).offset + (qg - slot.offset);
        }
    }
    unreachable!("global column within layout bounds")
}

/// `a \ b` as a multiset of atoms (orientation-insensitive for equijoins);
/// `None` if some atom of `b` is missing from `a`.
fn atom_multiset_diff(a: &[Atom], b: &[Atom]) -> Option<Vec<Atom>> {
    let mut rest: Vec<Option<&Atom>> = a.iter().map(Some).collect();
    for want in b {
        let pos = rest.iter().position(|x| match x {
            Some(have) => atom_eq_sym(have, want),
            None => false,
        })?;
        rest[pos] = None;
    }
    Some(rest.into_iter().flatten().cloned().collect())
}

fn atom_eq_sym(a: &Atom, b: &Atom) -> bool {
    match (a, b) {
        (Atom::Cols(a1, CmpOp::Eq, a2), Atom::Cols(b1, CmpOp::Eq, b2)) => {
            (a1 == b1 && a2 == b2) || (a1 == b2 && a2 == b1)
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use crate::view_def::{col_cmp, col_eq, ViewExpr};
    use ojv_exec::{eval_expr, ExecCtx};

    fn setup() -> (Catalog, MaterializedView) {
        let mut c = example1_catalog();
        populate_example1(&mut c, 10, 12);
        let view = MaterializedView::create(&c, oj_view_def()).unwrap();
        (c, view)
    }

    /// Oracle: evaluate the query directly and compare with the match
    /// execution.
    fn assert_match_correct(catalog: &Catalog, query: &ViewDef, view: &MaterializedView) {
        let m = match_view(catalog, query, view)
            .unwrap()
            .expect("query should match");
        let via_view = execute_match(view, &m);
        let q = analyze(catalog, query).unwrap();
        let ctx = ExecCtx::new(catalog, &q.layout);
        let direct_rows: Vec<ojv_rel::Row> = eval_expr(&ctx, &q.expr)
            .unwrap()
            .iter()
            .map(|r| key_of(r, &q.projection))
            .collect();
        let direct = Relation::new(via_view.schema().clone(), direct_rows);
        assert!(
            via_view.bag_eq(&direct),
            "match execution diverged from direct evaluation\nvia view:\n{via_view}\ndirect:\n{direct}"
        );
    }

    #[test]
    fn identical_query_matches() {
        let (c, view) = setup();
        assert_match_correct(&c, &oj_view_def(), &view);
    }

    /// The core-view query (all inner joins) is answerable from the
    /// outer-join view by selecting the full-pattern rows.
    #[test]
    fn inner_join_core_query_matches_outer_join_view() {
        let (c, view) = setup();
        let query = ViewDef::new(
            "q",
            ViewExpr::inner(
                vec![col_eq("part", "p_partkey", "lineitem", "l_partkey")],
                ViewExpr::table("part"),
                ViewExpr::inner(
                    vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                    ViewExpr::table("orders"),
                    ViewExpr::table("lineitem"),
                ),
            ),
        );
        let m = match_view(&c, &query, &view).unwrap().expect("matches");
        assert_eq!(m.compensation.len(), 1);
        assert_match_correct(&c, &query, &view);
    }

    /// A query with an extra child-side selection matches with a
    /// compensation conjunct.
    #[test]
    fn extra_selection_on_child_tables_matches() {
        let (c, view) = setup();
        let query = ViewDef::new(
            "q",
            ViewExpr::select(
                vec![col_cmp("part", "p_retailprice", CmpOp::Lt, 106.0)],
                ViewExpr::full_outer(
                    vec![col_eq("part", "p_partkey", "lineitem", "l_partkey")],
                    ViewExpr::table("part"),
                    ViewExpr::left_outer(
                        vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                        ViewExpr::table("orders"),
                        ViewExpr::table("lineitem"),
                    ),
                ),
            ),
        );
        // σ_{p(part)} kills the {orders} term of the query; the remaining
        // terms all carry the part filter, whose atoms reference only the
        // part table — fine for the {P} child of {P,O,L}.
        let m = match_view(&c, &query, &view).unwrap().expect("matches");
        assert!(m.compensation.len() >= 2);
        assert_match_correct(&c, &query, &view);
    }

    /// A narrower projection is answerable when the view outputs the
    /// columns.
    #[test]
    fn projected_query_matches() {
        let (c, view) = setup();
        let query = oj_view_def().with_projection(vec![
            ("part", "p_partkey"),
            ("orders", "o_orderkey"),
            ("lineitem", "l_quantity"),
        ]);
        let m = match_view(&c, &query, &view).unwrap().expect("matches");
        assert_eq!(m.projection.len(), 3);
        assert_match_correct(&c, &query, &view);
    }

    /// Rejections: different table sets, terms the view lacks, weaker query
    /// predicates, and output columns the view hides.
    #[test]
    fn rejects_different_table_set() {
        let (c, view) = setup();
        let query = ViewDef::new(
            "q",
            ViewExpr::inner(
                vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                ViewExpr::table("orders"),
                ViewExpr::table("lineitem"),
            ),
        );
        assert!(match_view(&c, &query, &view).unwrap().is_none());
    }

    /// With the Example 1 foreign keys, even a lineitem-preserving query
    /// matches: FK term pruning shows its extra terms are empty, leaving
    /// exactly the view's terms. (This is the FK-exploitation the companion
    /// paper [6] describes for matching.)
    #[test]
    fn fk_pruning_enables_lineitem_preserving_match() {
        let (c, view) = setup();
        let query = ViewDef::new(
            "q",
            ViewExpr::full_outer(
                vec![col_eq("part", "p_partkey", "lineitem", "l_partkey")],
                ViewExpr::table("part"),
                ViewExpr::right_outer(
                    vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                    ViewExpr::table("orders"),
                    ViewExpr::table("lineitem"),
                ),
            ),
        );
        let m = match_view(&c, &query, &view)
            .unwrap()
            .expect("matches via FK pruning");
        assert_eq!(m.compensation.len(), 2); // {P,O,L} and {P}
        assert_match_correct(&c, &query, &view);
    }

    /// Without foreign keys, a query term the view lacks forces rejection:
    /// `R fo S` needs `{S}`-orphans that a `R lo S` view never stores.
    #[test]
    fn rejects_terms_absent_from_view() {
        let mut c = v1_catalog();
        for (name, n) in [("r", 5i64), ("s", 6)] {
            let rows: Vec<ojv_rel::Row> = (1..=n).map(|i| v1_row(i, i % 3, i)).collect();
            c.insert(name, rows).unwrap();
        }
        let view = MaterializedView::create(
            &c,
            ViewDef::new(
                "r_lo_s",
                ViewExpr::left_outer(
                    vec![col_eq("r", "jc", "s", "jc")],
                    ViewExpr::table("r"),
                    ViewExpr::table("s"),
                ),
            ),
        )
        .unwrap();
        let query = ViewDef::new(
            "q",
            ViewExpr::full_outer(
                vec![col_eq("r", "jc", "s", "jc")],
                ViewExpr::table("r"),
                ViewExpr::table("s"),
            ),
        );
        assert!(match_view(&c, &query, &view).unwrap().is_none());
        // The converse direction matches: R lo S from the R fo S view.
        let fo_view = MaterializedView::create(&c, query).unwrap();
        let lo_query = ViewDef::new(
            "q2",
            ViewExpr::left_outer(
                vec![col_eq("r", "jc", "s", "jc")],
                ViewExpr::table("r"),
                ViewExpr::table("s"),
            ),
        );
        let m = match_view(&c, &lo_query, &fo_view)
            .unwrap()
            .expect("lo ⊆ fo");
        assert_eq!(m.compensation.len(), 2);
        assert_match_correct(&c, &lo_query, &fo_view);
    }

    #[test]
    fn rejects_weaker_query_predicates() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 10, 12);
        // View with a part filter baked into the join; query without it
        // needs rows the view dropped.
        let view_def = ViewDef::new(
            "filtered_view",
            ViewExpr::full_outer(
                vec![
                    col_eq("part", "p_partkey", "lineitem", "l_partkey"),
                    col_cmp("part", "p_retailprice", CmpOp::Lt, 105.0),
                ],
                ViewExpr::table("part"),
                ViewExpr::left_outer(
                    vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                    ViewExpr::table("orders"),
                    ViewExpr::table("lineitem"),
                ),
            ),
        );
        let view = MaterializedView::create(&c, view_def).unwrap();
        assert!(match_view(&c, &oj_view_def(), &view).unwrap().is_none());
    }

    #[test]
    fn rejects_hidden_output_columns() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 10, 12);
        let view = MaterializedView::create(
            &c,
            oj_view_def().with_projection(vec![
                ("part", "p_partkey"),
                ("orders", "o_orderkey"),
                ("lineitem", "l_orderkey"),
                ("lineitem", "l_linenumber"),
            ]),
        )
        .unwrap();
        // The query wants l_quantity, which the view hides.
        let query = oj_view_def().with_projection(vec![("lineitem", "l_quantity")]);
        assert!(match_view(&c, &query, &view).unwrap().is_none());
    }

    /// Matching keeps working against a *maintained* view: update the base
    /// tables, maintain, re-execute the match.
    #[test]
    fn match_execution_tracks_maintenance() {
        let (mut c, mut view) = setup();
        let query = ViewDef::new(
            "q",
            ViewExpr::inner(
                vec![col_eq("part", "p_partkey", "lineitem", "l_partkey")],
                ViewExpr::table("part"),
                ViewExpr::inner(
                    vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                    ViewExpr::table("orders"),
                    ViewExpr::table("lineitem"),
                ),
            ),
        );
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        crate::maintain::maintain(
            &mut view,
            &c,
            &up,
            &crate::policy::MaintenancePolicy::paper(),
        )
        .unwrap();
        assert_match_correct(&c, &query, &view);
    }
}
