//! Segmented column-major row heap with per-column null bitmaps.
//!
//! [`ColumnHeap`] replaces the old `Vec<Row>` (one boxed `Vec<Datum>` per
//! row, 32 bytes per datum plus a heap allocation per row) with typed
//! column vectors split into fixed-size segments:
//!
//! * each column stores its native representation (`i64`, `f64`, `i32`,
//!   `bool`, `Arc<str>`) contiguously — residual predicate evaluation and
//!   key hashing read sequential memory instead of striding across row
//!   allocations;
//! * nulls live in a per-segment bitmap (one bit per row), so a null costs
//!   one bit plus the column's default slot instead of a tagged enum;
//! * segments are fixed at [`SEG_ROWS`] rows, so growing to SF=1
//!   (~6M lineitem rows) never copies the whole heap the way one giant
//!   `Vec` realloc would;
//! * string columns intern through a per-heap pool: low-cardinality TPC-H
//!   columns (return flags, ship modes, priorities) collapse to one
//!   `Arc<str>` per distinct value.
//!
//! Rows are addressed by dense position (`0..len`), exactly like the old
//! heap; deletion is swap-remove. Readers get a [`RowRef`] — position +
//! heap — whose accessors return [`DatumRef`] views with `Datum`-identical
//! equality and hashing, or materialize owned datums by cloning the
//! backing `Arc` (never re-allocating string bytes).
//!
//! ## Numeric canonicalization
//!
//! Schemas admit `Int` datums in `Float` columns (numeric widening). The
//! heap stores a `Float` column as `f64`, so such datums are canonicalized
//! to `Float` on insert. This is invisible to the engine: `Datum` equality,
//! ordering, and hashing are already cross-type for exactly this pair, and
//! every maintenance path (including recompute and recovery replay) reads
//! the same canonicalized storage.

use std::sync::Arc;

use ojv_rel::{DataType, Datum, DatumRef, FxHashSet, Row, SchemaRef};

/// Rows per segment. 4096 keeps a segment's largest column (16-byte
/// `Arc<str>` slots) at 64 KiB — big enough to amortize per-segment
/// bookkeeping, small enough that growth never stalls on a huge copy.
pub const SEG_ROWS: usize = 4096;

const WORDS_PER_SEG: usize = SEG_ROWS / 64;

/// Typed storage for one segment of one column.
#[derive(Debug, Clone)]
enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
    Date(Vec<i32>),
}

impl ColumnData {
    fn with_type(ty: DataType) -> ColumnData {
        match ty {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
        }
    }

    fn pop(&mut self) {
        match self {
            ColumnData::Bool(v) => {
                v.pop();
            }
            ColumnData::Int(v) => {
                v.pop();
            }
            ColumnData::Float(v) => {
                v.pop();
            }
            ColumnData::Str(v) => {
                v.pop();
            }
            ColumnData::Date(v) => {
                v.pop();
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.capacity(),
            ColumnData::Int(v) => v.capacity() * 8,
            ColumnData::Float(v) => v.capacity() * 8,
            // Arc slot only; the string bytes are shared and counted by the
            // intern pool estimate.
            ColumnData::Str(v) => v.capacity() * std::mem::size_of::<Arc<str>>(),
            ColumnData::Date(v) => v.capacity() * 4,
        }
    }
}

/// One column segment: up to [`SEG_ROWS`] values plus a null bitmap.
#[derive(Debug, Clone)]
struct Segment {
    nulls: [u64; WORDS_PER_SEG],
    data: ColumnData,
}

impl Segment {
    fn new(ty: DataType) -> Segment {
        Segment {
            nulls: [0; WORDS_PER_SEG],
            data: ColumnData::with_type(ty),
        }
    }

    #[inline]
    fn is_null(&self, off: usize) -> bool {
        self.nulls[off / 64] & (1 << (off % 64)) != 0
    }

    #[inline]
    fn set_null(&mut self, off: usize, null: bool) {
        let mask = 1u64 << (off % 64);
        if null {
            self.nulls[off / 64] |= mask;
        } else {
            self.nulls[off / 64] &= !mask;
        }
    }
}

/// One column: its declared type and the segment chain.
#[derive(Debug, Clone)]
struct Column {
    ty: DataType,
    segs: Vec<Segment>,
}

/// A column-major row heap addressed by dense position.
#[derive(Debug, Clone)]
pub struct ColumnHeap {
    schema: SchemaRef,
    cols: Vec<Column>,
    len: usize,
    /// Intern pool for string values across all string columns.
    interner: FxHashSet<Arc<str>>,
    /// Shared empty string used as the slot default for null strings.
    empty: Arc<str>,
}

impl ColumnHeap {
    pub fn new(schema: SchemaRef) -> ColumnHeap {
        let cols = schema
            .columns()
            .iter()
            .map(|c| Column {
                ty: c.ty,
                segs: Vec::new(),
            })
            .collect();
        ColumnHeap {
            schema,
            cols,
            len: 0,
            interner: FxHashSet::default(),
            empty: Arc::from(""),
        }
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    fn intern(&mut self, s: &Arc<str>) -> Arc<str> {
        if let Some(existing) = self.interner.get(s.as_ref()) {
            existing.clone()
        } else {
            self.interner.insert(s.clone());
            s.clone()
        }
    }

    /// Append one row. The caller (the table) has already checked the row
    /// against the schema; a type mismatch here is a storage bug.
    pub fn push_row(&mut self, row: &[Datum]) {
        debug_assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        let off = self.len % SEG_ROWS;
        let empty = self.empty.clone();
        for (ci, datum) in row.iter().enumerate() {
            // Interning needs `&mut self.interner` while the column is also
            // borrowed, so resolve the stored string before touching segments.
            let interned: Option<Arc<str>> = match datum {
                Datum::Str(s) => Some(self.intern(s)),
                _ => None,
            };
            let col = &mut self.cols[ci];
            if off == 0 {
                col.segs.push(Segment::new(col.ty));
            }
            let seg = col.segs.last_mut().expect("segment just ensured");
            seg.set_null(off, datum.is_null());
            match (&mut seg.data, datum) {
                (ColumnData::Bool(v), Datum::Bool(b)) => v.push(*b),
                (ColumnData::Bool(v), Datum::Null) => v.push(false),
                (ColumnData::Int(v), Datum::Int(i)) => v.push(*i),
                (ColumnData::Int(v), Datum::Null) => v.push(0),
                (ColumnData::Float(v), Datum::Float(f)) => v.push(*f),
                // Numeric widening: schemas admit Int datums in Float
                // columns; store the canonical float (see module docs).
                (ColumnData::Float(v), Datum::Int(i)) => v.push(*i as f64),
                (ColumnData::Float(v), Datum::Null) => v.push(0.0),
                (ColumnData::Str(v), Datum::Str(_)) => {
                    v.push(interned.expect("interned above"));
                }
                (ColumnData::Str(v), Datum::Null) => v.push(empty.clone()),
                (ColumnData::Date(v), Datum::Date(d)) => v.push(*d),
                (ColumnData::Date(v), Datum::Null) => v.push(0),
                (data, datum) => unreachable!(
                    "datum {datum:?} in {:?} column (schema was checked)",
                    std::mem::discriminant(data)
                ),
            }
        }
        self.len += 1;
    }

    /// Remove the row at `pos` by moving the last row into its place
    /// (no-op move when `pos` is the last row). Mirrors `Vec::swap_remove`.
    pub fn swap_remove(&mut self, pos: usize) {
        assert!(pos < self.len, "swap_remove position out of bounds");
        let last = self.len - 1;
        let (lseg, loff) = (last / SEG_ROWS, last % SEG_ROWS);
        if pos != last {
            let (pseg, poff) = (pos / SEG_ROWS, pos % SEG_ROWS);
            for col in &mut self.cols {
                let moved_null = col.segs[lseg].is_null(loff);
                // Move the last value into `pos` within this column.
                if pseg == lseg {
                    let seg = &mut col.segs[pseg];
                    seg.set_null(poff, moved_null);
                    match &mut seg.data {
                        ColumnData::Bool(v) => v.swap(poff, loff),
                        ColumnData::Int(v) => v.swap(poff, loff),
                        ColumnData::Float(v) => v.swap(poff, loff),
                        ColumnData::Str(v) => v.swap(poff, loff),
                        ColumnData::Date(v) => v.swap(poff, loff),
                    }
                } else {
                    let (front, back) = col.segs.split_at_mut(lseg);
                    let psegment = &mut front[pseg];
                    let lsegment = &mut back[0];
                    psegment.set_null(poff, moved_null);
                    match (&mut psegment.data, &mut lsegment.data) {
                        (ColumnData::Bool(p), ColumnData::Bool(l)) => p[poff] = l[loff],
                        (ColumnData::Int(p), ColumnData::Int(l)) => p[poff] = l[loff],
                        (ColumnData::Float(p), ColumnData::Float(l)) => p[poff] = l[loff],
                        (ColumnData::Str(p), ColumnData::Str(l)) => {
                            p[poff] = std::mem::replace(&mut l[loff], self.empty.clone());
                        }
                        (ColumnData::Date(p), ColumnData::Date(l)) => p[poff] = l[loff],
                        _ => unreachable!("segments of one column share a type"),
                    }
                }
            }
        }
        // Truncate the tail slot in every column.
        for col in &mut self.cols {
            let seg = col.segs.last_mut().expect("non-empty heap has segments");
            seg.data.pop();
            seg.set_null(loff, false);
            if seg.data.len() == 0 {
                col.segs.pop();
            }
        }
        self.len -= 1;
    }

    /// Is the value at (`pos`, `col`) NULL?
    #[inline]
    pub fn is_null(&self, pos: usize, col: usize) -> bool {
        debug_assert!(pos < self.len);
        self.cols[col].segs[pos / SEG_ROWS].is_null(pos % SEG_ROWS)
    }

    /// Borrowed view of the value at (`pos`, `col`).
    #[inline]
    pub fn datum_ref(&self, pos: usize, col: usize) -> DatumRef<'_> {
        debug_assert!(pos < self.len, "row position out of bounds");
        let seg = &self.cols[col].segs[pos / SEG_ROWS];
        let off = pos % SEG_ROWS;
        if seg.is_null(off) {
            return DatumRef::Null;
        }
        match &seg.data {
            ColumnData::Bool(v) => DatumRef::Bool(v[off]),
            ColumnData::Int(v) => DatumRef::Int(v[off]),
            ColumnData::Float(v) => DatumRef::Float(v[off]),
            ColumnData::Str(v) => DatumRef::Str(&v[off]),
            ColumnData::Date(v) => DatumRef::Date(v[off]),
        }
    }

    /// Owned value at (`pos`, `col`); strings clone the backing `Arc`.
    #[inline]
    pub fn datum(&self, pos: usize, col: usize) -> Datum {
        let seg = &self.cols[col].segs[pos / SEG_ROWS];
        let off = pos % SEG_ROWS;
        if seg.is_null(off) {
            return Datum::Null;
        }
        match &seg.data {
            ColumnData::Bool(v) => Datum::Bool(v[off]),
            ColumnData::Int(v) => Datum::Int(v[off]),
            ColumnData::Float(v) => Datum::Float(v[off]),
            ColumnData::Str(v) => Datum::Str(v[off].clone()),
            ColumnData::Date(v) => Datum::Date(v[off]),
        }
    }

    /// Write row `pos` into `out[..width]` (a wide-row slot, say).
    pub fn copy_row_into(&self, pos: usize, out: &mut [Datum]) {
        debug_assert_eq!(out.len(), self.cols.len(), "slot width mismatch");
        for (ci, slot) in out.iter_mut().enumerate() {
            *slot = self.datum(pos, ci);
        }
    }

    /// Materialize row `pos` as an owned row.
    pub fn row(&self, pos: usize) -> Row {
        (0..self.cols.len()).map(|ci| self.datum(pos, ci)).collect()
    }

    /// Borrowed handle to row `pos`.
    #[inline]
    pub fn row_ref(&self, pos: usize) -> RowRef<'_> {
        debug_assert!(pos < self.len, "row position out of bounds");
        RowRef { heap: self, pos }
    }

    /// Iterate all rows as borrowed handles, in heap (position) order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> + Clone {
        (0..self.len).map(move |pos| RowRef { heap: self, pos })
    }

    /// Rough heap footprint in bytes: column buffers, null bitmaps, and the
    /// intern pool's string bytes. Used by the bench memory report.
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0;
        for col in &self.cols {
            for seg in &col.segs {
                total += seg.data.heap_bytes() + WORDS_PER_SEG * 8;
            }
        }
        for s in &self.interner {
            total += s.len() + std::mem::size_of::<Arc<str>>();
        }
        total
    }
}

/// A borrowed row of a [`ColumnHeap`]: the position-stable handle probe
/// loops pass around instead of `&[Datum]`.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    heap: &'a ColumnHeap,
    pos: usize,
}

impl<'a> RowRef<'a> {
    /// Number of columns.
    #[inline]
    pub fn width(self) -> usize {
        self.heap.width()
    }

    /// Borrowed view of column `col`.
    #[inline]
    pub fn dat(self, col: usize) -> DatumRef<'a> {
        self.heap.datum_ref(self.pos, col)
    }

    /// Owned value of column `col` (strings clone the backing `Arc`).
    #[inline]
    pub fn datum(self, col: usize) -> Datum {
        self.heap.datum(self.pos, col)
    }

    /// Is column `col` NULL?
    #[inline]
    pub fn is_null(self, col: usize) -> bool {
        self.heap.is_null(self.pos, col)
    }

    /// Write this row into `out[..width]`.
    #[inline]
    pub fn copy_into(self, out: &mut [Datum]) {
        self.heap.copy_row_into(self.pos, out);
    }

    /// Materialize an owned row.
    pub fn to_row(self) -> Row {
        self.heap.row(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_rel::{Column as SchemaColumn, Schema};

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            SchemaColumn::new("t", "id", DataType::Int, false),
            SchemaColumn::new("t", "f", DataType::Float, true),
            SchemaColumn::new("t", "s", DataType::Str, true),
            SchemaColumn::new("t", "d", DataType::Date, true),
            SchemaColumn::new("t", "b", DataType::Bool, true),
        ])
        .unwrap()
    }

    fn row(id: i64, s: Option<&str>) -> Row {
        vec![
            Datum::Int(id),
            Datum::Float(id as f64 + 0.5),
            s.map_or(Datum::Null, Datum::str),
            Datum::Date(id as i32),
            Datum::Bool(id % 2 == 0),
        ]
    }

    #[test]
    fn push_and_read_back() {
        let mut h = ColumnHeap::new(schema());
        for i in 0..10 {
            h.push_row(&row(i, if i % 3 == 0 { None } else { Some("x") }));
        }
        assert_eq!(h.len(), 10);
        for i in 0..10usize {
            assert_eq!(
                h.row(i),
                row(i as i64, if i % 3 == 0 { None } else { Some("x") })
            );
            assert_eq!(h.is_null(i, 2), i % 3 == 0);
        }
    }

    #[test]
    fn swap_remove_matches_vec_model() {
        let mut h = ColumnHeap::new(schema());
        let mut model: Vec<Row> = Vec::new();
        for i in 0..200 {
            let r = row(i, Some(if i % 5 == 0 { "a" } else { "b" }));
            h.push_row(&r);
            model.push(r);
        }
        // Remove from front, middle, back in a scripted order.
        for &pos in &[0usize, 150, 150, 7, 99, 0, 100] {
            h.swap_remove(pos);
            model.swap_remove(pos);
            assert_eq!(h.len(), model.len());
        }
        for (i, m) in model.iter().enumerate() {
            assert_eq!(&h.row(i), m, "row {i}");
        }
    }

    #[test]
    fn crosses_segment_boundaries() {
        let mut h = ColumnHeap::new(schema());
        let n = SEG_ROWS * 2 + 17;
        for i in 0..n {
            h.push_row(&row(i as i64, Some("s")));
        }
        assert_eq!(h.len(), n);
        assert_eq!(h.row(SEG_ROWS)[0], Datum::Int(SEG_ROWS as i64));
        // Swap-remove across the segment boundary: the mover comes from the
        // tail segment into the first.
        h.swap_remove(3);
        assert_eq!(h.row(3)[0], Datum::Int((n - 1) as i64));
        assert_eq!(h.len(), n - 1);
        // Drain the tail far enough to drop a whole segment.
        for _ in 0..(SEG_ROWS + 20) {
            h.swap_remove(h.len() - 1);
        }
        assert_eq!(h.len(), n - 1 - SEG_ROWS - 20);
        assert_eq!(h.row(0)[0], Datum::Int(0));
    }

    #[test]
    fn int_in_float_column_is_canonicalized() {
        let mut h = ColumnHeap::new(schema());
        h.push_row(&[
            Datum::Int(1),
            Datum::Int(7), // Int into the Float column: widened on insert
            Datum::Null,
            Datum::Null,
            Datum::Null,
        ]);
        assert_eq!(h.datum(0, 1), Datum::Float(7.0));
        // Equality and hashing treat Int(7) and Float(7.0) identically.
        assert_eq!(h.datum(0, 1), Datum::Int(7));
    }

    #[test]
    fn interning_dedupes_strings() {
        let mut h = ColumnHeap::new(schema());
        for i in 0..100 {
            h.push_row(&row(i, Some("repeated")));
        }
        assert_eq!(h.interner.len(), 1);
        match (h.datum_ref(0, 2), h.datum_ref(99, 2)) {
            (DatumRef::Str(a), DatumRef::Str(b)) => {
                assert!(std::ptr::eq(a, b), "interned strings share storage");
            }
            other => panic!("expected strings, got {other:?}"),
        }
    }

    #[test]
    fn datum_ref_equals_owned() {
        let mut h = ColumnHeap::new(schema());
        let r = row(42, Some("z"));
        h.push_row(&r);
        let rr = h.row_ref(0);
        for (ci, d) in r.iter().enumerate() {
            assert_eq!(rr.dat(ci), d.as_ref());
            assert_eq!(rr.datum(ci), *d);
        }
        let mut out = vec![Datum::Null; 5];
        rr.copy_into(&mut out);
        assert_eq!(out, r);
    }

    #[test]
    fn approx_bytes_grows_with_rows() {
        let mut h = ColumnHeap::new(schema());
        let empty = h.approx_bytes();
        for i in 0..1000 {
            h.push_row(&row(i, Some("abcdefgh")));
        }
        assert!(h.approx_bytes() > empty);
    }
}
