//! The catalog: tables plus declared constraints.

use ojv_rel::{key_of, Column, Datum, FxHashMap, Relation, Row, Schema};

use crate::delta::{Update, UpdateOp};
use crate::error::StorageError;
use crate::table::Table;

/// A foreign-key constraint from `child` columns to the `parent` table's
/// unique key (paper §6 assumes FKs reference a non-null unique key).
#[derive(Debug, Clone)]
pub struct ForeignKey {
    pub name: String,
    pub child: String,
    /// Column indexes in the child table, aligned with the parent key.
    pub child_cols: Vec<usize>,
    pub parent: String,
    /// Column indexes of the parent's unique key.
    pub parent_key: Vec<usize>,
    /// Secondary index id on the child table used for restrict checks.
    child_index: usize,
    /// Whether the constraint is declared with cascading deletes. The FK
    /// maintenance optimizations of §6 must be disabled in that case.
    pub cascade_delete: bool,
    /// Whether the constraint is deferrable; also disables §6 optimizations
    /// inside multi-statement transactions.
    pub deferrable: bool,
}

/// The set of base tables and constraints.
///
/// All updates flow through [`Catalog::insert`]/[`Catalog::delete`], which enforce constraints
/// and returns the applied delta (`ΔT`) for view maintenance.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: FxHashMap<String, usize>,
    fks: Vec<ForeignKey>,
    /// When false, constraint checks are skipped (bulk load fast path).
    pub enforce_constraints: bool,
    /// Bumped by every schema-changing DDL (`create_table`,
    /// `add_foreign_key`). Cached maintenance plans are keyed on this so a
    /// schema change invalidates them; data changes do not bump it.
    schema_version: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            tables: Vec::new(),
            by_name: FxHashMap::default(),
            fks: Vec::new(),
            enforce_constraints: true,
            schema_version: 0,
        }
    }

    /// Monotone counter of schema-changing DDL statements.
    pub fn schema_version(&self) -> u64 {
        self.schema_version
    }

    /// Create a table. `key` lists the unique-key column names.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<Column>,
        key: &[&str],
    ) -> Result<(), StorageError> {
        if self.by_name.contains_key(name) {
            return Err(StorageError::InvalidConstraint {
                detail: format!("table {name} already exists"),
            });
        }
        let schema = Schema::shared(columns)?;
        let mut key_cols = Vec::with_capacity(key.len());
        for k in key {
            key_cols.push(
                schema
                    .index_of(name, k)
                    .map_err(|_| StorageError::UnknownColumn {
                        table: name.to_string(),
                        column: k.to_string(),
                    })?,
            );
        }
        let table = Table::new(name, schema, key_cols)?;
        self.by_name.insert(name.to_string(), self.tables.len());
        self.tables.push(table);
        self.schema_version += 1;
        Ok(())
    }

    /// Declare a foreign key from `child.(child_cols)` to `parent`'s unique
    /// key. A secondary index on the child columns is created to make
    /// restrict checks cheap.
    pub fn add_foreign_key(
        &mut self,
        name: &str,
        child: &str,
        child_cols: &[&str],
        parent: &str,
    ) -> Result<(), StorageError> {
        let parent_key = self.table(parent)?.key_cols().to_vec();
        if parent_key.len() != child_cols.len() {
            return Err(StorageError::InvalidConstraint {
                detail: format!(
                    "foreign key {name}: {} child columns vs {}-column parent key",
                    child_cols.len(),
                    parent_key.len()
                ),
            });
        }
        let child_idx = self.index_of(child)?;
        let child_schema = self.tables[child_idx].schema().clone();
        let mut cols = Vec::with_capacity(child_cols.len());
        for c in child_cols {
            cols.push(child_schema.index_of(child, c).map_err(|_| {
                StorageError::UnknownColumn {
                    table: child.to_string(),
                    column: c.to_string(),
                }
            })?);
        }
        let child_index = self.tables[child_idx].add_secondary_index(cols.clone());
        self.fks.push(ForeignKey {
            name: name.to_string(),
            child: child.to_string(),
            child_cols: cols,
            parent: parent.to_string(),
            parent_key,
            child_index,
            cascade_delete: false,
            deferrable: false,
        });
        self.schema_version += 1;
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| StorageError::UnknownTable {
                name: name.to_string(),
            })
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        match self.by_name.get(name) {
            Some(&i) => Ok(&mut self.tables[i]),
            None => Err(StorageError::UnknownTable {
                name: name.to_string(),
            }),
        }
    }

    fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable {
                name: name.to_string(),
            })
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// Mutable access to the declared foreign keys, for catalog restore to
    /// reapply the `cascade_delete`/`deferrable` flags `add_foreign_key`
    /// defaults to `false`.
    pub fn foreign_keys_mut(&mut self) -> &mut [ForeignKey] {
        &mut self.fks
    }

    /// Foreign keys whose child table is `child`.
    pub fn fks_from<'a>(&'a self, child: &'a str) -> impl Iterator<Item = &'a ForeignKey> + 'a {
        self.fks.iter().filter(move |fk| fk.child == child)
    }

    /// Foreign keys whose parent table is `parent`.
    pub fn fks_to<'a>(&'a self, parent: &'a str) -> impl Iterator<Item = &'a ForeignKey> + 'a {
        self.fks.iter().filter(move |fk| fk.parent == parent)
    }

    /// Does deleting `parent` key `key` violate a foreign key *against the
    /// rows of this catalog*? Returns the first violated constraint.
    ///
    /// This is the read half of [`Catalog::delete`]'s restrict check,
    /// exposed for the sharded facade: children need not be colocated with
    /// the parent they reference, so the facade broadcasts this probe to
    /// every shard before routing the delete to the parent's owner.
    pub fn fk_restricting(
        &self,
        parent: &str,
        key: &[Datum],
    ) -> Result<Option<&ForeignKey>, StorageError> {
        for fk in self.fks.iter().filter(|fk| fk.parent == parent) {
            let child = self.table(&fk.child)?;
            if child.count_secondary(fk.child_index, key) > 0 {
                return Ok(Some(fk));
            }
        }
        Ok(None)
    }

    /// Insert a batch of rows, enforcing unique keys and FK parent existence.
    ///
    /// All-or-nothing: validation runs before any row is applied. Returns the
    /// applied delta.
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<Update, StorageError> {
        let tidx = self.index_of(table)?;
        // Canonicalize numeric-widened datums up front so the applied delta
        // (and hence the WAL record) matches the columnar heap's stored
        // representation byte for byte.
        let mut rows = rows;
        {
            let schema = self.tables[tidx].schema().clone();
            for row in &mut rows {
                schema.canonicalize_row(row);
            }
        }
        if self.enforce_constraints {
            // FK parent check: the parent may be satisfied by existing rows
            // or by rows earlier in this same batch (self-referencing batches
            // to the parent table are handled by batch-local key sets).
            for fk in self.fks.iter().filter(|fk| fk.child == table) {
                let parent = self.table(&fk.parent)?;
                for row in &rows {
                    let fkv = key_of(row, &fk.child_cols);
                    if fkv.iter().any(|d| d.is_null()) {
                        // SQL semantics: null FK values are not checked.
                        continue;
                    }
                    if !parent.contains_key(&fkv) {
                        return Err(StorageError::ForeignKeyViolation {
                            constraint: fk.name.clone(),
                            detail: format!(
                                "no {} row with key {}",
                                fk.parent,
                                ojv_rel::row_display(&fkv)
                            ),
                        });
                    }
                }
            }
        }
        let t = &mut self.tables[tidx];
        let schema = t.schema().clone();
        let mut applied: Vec<Row> = Vec::with_capacity(rows.len());
        for row in rows {
            match t.insert(row.clone()) {
                Ok(()) => applied.push(row),
                Err(e) => {
                    // Roll back rows applied so far to keep all-or-nothing.
                    for r in &applied {
                        let key = key_of(r, t.key_cols());
                        t.delete(&key).expect("rollback of just-inserted row");
                    }
                    return Err(e);
                }
            }
        }
        Ok(Update {
            table: table.to_string(),
            op: UpdateOp::Insert,
            rows: Relation::new(schema, applied),
        })
    }

    /// Delete a batch of rows by unique key, enforcing FK restrict (no
    /// children may reference a deleted parent). Returns the applied delta.
    pub fn delete(&mut self, table: &str, keys: &[Vec<Datum>]) -> Result<Update, StorageError> {
        let tidx = self.index_of(table)?;
        if self.enforce_constraints {
            for fk in self.fks.iter().filter(|fk| fk.parent == table) {
                let child = self.table(&fk.child)?;
                for key in keys {
                    if child.count_secondary(fk.child_index, key) > 0 {
                        return Err(StorageError::ForeignKeyViolation {
                            constraint: fk.name.clone(),
                            detail: format!(
                                "rows in {} still reference {} key {}",
                                fk.child,
                                table,
                                ojv_rel::row_display(key)
                            ),
                        });
                    }
                }
            }
        }
        let t = &mut self.tables[tidx];
        let schema = t.schema().clone();
        let mut deleted = Vec::with_capacity(keys.len());
        for key in keys {
            match t.delete(key) {
                Ok(row) => deleted.push(row),
                Err(e) => {
                    for r in &deleted {
                        t.insert(r.clone()).expect("rollback of just-deleted row");
                    }
                    return Err(e);
                }
            }
        }
        Ok(Update {
            table: table.to_string(),
            op: UpdateOp::Delete,
            rows: Relation::new(schema, deleted),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_rel::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "parent",
            vec![
                Column::new("parent", "pk", DataType::Int, false),
                Column::new("parent", "v", DataType::Int, true),
            ],
            &["pk"],
        )
        .unwrap();
        c.create_table(
            "child",
            vec![
                Column::new("child", "ck", DataType::Int, false),
                Column::new("child", "fk", DataType::Int, false),
            ],
            &["ck"],
        )
        .unwrap();
        c.add_foreign_key("fk_child_parent", "child", &["fk"], "parent")
            .unwrap();
        c
    }

    #[test]
    fn insert_checks_fk_parent() {
        let mut c = catalog();
        c.insert("parent", vec![vec![Datum::Int(1), Datum::Int(0)]])
            .unwrap();
        assert!(c
            .insert("child", vec![vec![Datum::Int(10), Datum::Int(1)]])
            .is_ok());
        let err = c
            .insert("child", vec![vec![Datum::Int(11), Datum::Int(99)]])
            .unwrap_err();
        assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn delete_restricts_on_children() {
        let mut c = catalog();
        c.insert("parent", vec![vec![Datum::Int(1), Datum::Int(0)]])
            .unwrap();
        c.insert("child", vec![vec![Datum::Int(10), Datum::Int(1)]])
            .unwrap();
        let err = c.delete("parent", &[vec![Datum::Int(1)]]).unwrap_err();
        assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
        c.delete("child", &[vec![Datum::Int(10)]]).unwrap();
        assert!(c.delete("parent", &[vec![Datum::Int(1)]]).is_ok());
    }

    #[test]
    fn insert_rollback_on_duplicate_is_all_or_nothing() {
        let mut c = catalog();
        c.insert("parent", vec![vec![Datum::Int(1), Datum::Int(0)]])
            .unwrap();
        let err = c.insert(
            "parent",
            vec![
                vec![Datum::Int(2), Datum::Int(0)],
                vec![Datum::Int(1), Datum::Int(0)], // duplicate
            ],
        );
        assert!(err.is_err());
        assert_eq!(c.table("parent").unwrap().len(), 1);
        assert!(c.table("parent").unwrap().get(&[Datum::Int(2)]).is_none());
    }

    #[test]
    fn delta_reports_applied_rows() {
        let mut c = catalog();
        let up = c
            .insert(
                "parent",
                vec![
                    vec![Datum::Int(1), Datum::Int(0)],
                    vec![Datum::Int(2), Datum::Null],
                ],
            )
            .unwrap();
        assert_eq!(up.op, UpdateOp::Insert);
        assert_eq!(up.rows.len(), 2);
        let down = c
            .delete("parent", &[vec![Datum::Int(1)], vec![Datum::Int(2)]])
            .unwrap();
        assert_eq!(down.op, UpdateOp::Delete);
        assert_eq!(down.rows.len(), 2);
        assert!(c.table("parent").unwrap().is_empty());
    }

    #[test]
    fn enforcement_can_be_disabled_for_bulk_load() {
        let mut c = catalog();
        c.enforce_constraints = false;
        // Child with a dangling FK loads fine in bulk mode.
        assert!(c
            .insert("child", vec![vec![Datum::Int(10), Datum::Int(42)]])
            .is_ok());
    }

    #[test]
    fn fk_declaration_validates_arity() {
        let mut c = catalog();
        let err = c.add_foreign_key("bad", "child", &["ck", "fk"], "parent");
        assert!(matches!(err, Err(StorageError::InvalidConstraint { .. })));
    }

    #[test]
    fn fks_from_and_to() {
        let c = catalog();
        assert_eq!(c.fks_from("child").count(), 1);
        assert_eq!(c.fks_to("parent").count(), 1);
        assert_eq!(c.fks_from("parent").count(), 0);
    }
}
