//! Heap tables with a unique-key hash index and secondary indexes.

use ojv_rel::{key_of, Datum, FxHashMap, Relation, Row, SchemaRef};

use crate::error::StorageError;
use crate::heap::{ColumnHeap, RowRef};

/// A secondary (non-unique) hash index over a column subset.
#[derive(Debug, Clone, Default)]
struct SecondaryIndex {
    cols: Vec<usize>,
    map: FxHashMap<Vec<Datum>, Vec<usize>>,
}

impl SecondaryIndex {
    fn insert(&mut self, row: &[Datum], pos: usize) {
        self.map
            .entry(key_of(row, &self.cols))
            .or_default()
            .push(pos);
    }

    fn remove(&mut self, row: &[Datum], pos: usize) {
        let key = key_of(row, &self.cols);
        if let Some(v) = self.map.get_mut(&key) {
            if let Some(i) = v.iter().position(|&p| p == pos) {
                v.swap_remove(i);
            }
            if v.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    fn reposition(&mut self, row: &[Datum], from: usize, to: usize) {
        let key = key_of(row, &self.cols);
        if let Some(v) = self.map.get_mut(&key) {
            if let Some(i) = v.iter().position(|&p| p == from) {
                v[i] = to;
            }
        }
    }
}

/// A handle to one of a table's indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexRef {
    /// The unique-key hash index.
    Unique,
    /// A secondary index by id.
    Secondary(usize),
}

/// An in-memory table: a columnar row heap plus a hash index on the unique
/// key.
///
/// Rows live in a [`ColumnHeap`] — segmented column-major pages with
/// per-column null bitmaps — and are addressed by dense position; deletion
/// uses swap-remove and fixes up index entries for the moved row, so both
/// insert and delete stay O(1) expected per row. Readers receive [`RowRef`]
/// handles (or materialize owned rows on cold paths).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    key_cols: Vec<usize>,
    heap: ColumnHeap,
    /// unique key -> position in the heap. Lookups borrow (`&[Datum]`), and
    /// the deterministic fx hasher keeps probes cheap on the delta hot path.
    unique: FxHashMap<Vec<Datum>, usize>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Create an empty table. Every key column must be non-nullable
    /// (paper §2: "every base table has a unique key that does not contain
    /// nulls").
    pub fn new(name: &str, schema: SchemaRef, key_cols: Vec<usize>) -> Result<Self, StorageError> {
        if key_cols.is_empty() {
            return Err(StorageError::InvalidConstraint {
                detail: format!("table {name} must declare a unique key"),
            });
        }
        for &c in &key_cols {
            if c >= schema.len() {
                return Err(StorageError::UnknownColumn {
                    table: name.to_string(),
                    column: format!("#{c}"),
                });
            }
            if schema.column(c).nullable {
                return Err(StorageError::NullInKey {
                    table: name.to_string(),
                });
            }
        }
        Ok(Table {
            name: name.to_string(),
            schema: schema.clone(),
            key_cols,
            heap: ColumnHeap::new(schema),
            unique: FxHashMap::default(),
            secondary: Vec::new(),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Column indexes of the unique key.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The backing column-major heap — the zero-copy scan surface join
    /// builds and probes read from.
    pub fn heap(&self) -> &ColumnHeap {
        &self.heap
    }

    /// Borrowed handle to the row at heap position `pos`.
    #[inline]
    pub fn row_ref(&self, pos: usize) -> RowRef<'_> {
        self.heap.row_ref(pos)
    }

    /// Materialize the row at heap position `pos`.
    pub fn row(&self, pos: usize) -> Row {
        self.heap.row(pos)
    }

    /// Iterate all rows as borrowed handles, in heap order.
    pub fn iter_refs(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> + Clone {
        self.heap.iter()
    }

    /// Iterate all rows materialized, in heap order — cold paths only
    /// (checkpoint encoding, tests); scans should use [`Self::iter_refs`].
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = Row> + '_ {
        (0..self.heap.len()).map(move |pos| self.heap.row(pos))
    }

    /// Materialize the table contents as a relation.
    pub fn to_relation(&self) -> Relation {
        Relation::new(self.schema.clone(), self.iter_rows().collect())
    }

    /// Add a secondary index over `cols`; returns its id. Existing rows are
    /// indexed immediately. Requesting an index over a column set that is
    /// already indexed returns the existing id instead of building a
    /// duplicate — catalog restore re-runs `add_foreign_key` after
    /// re-creating the recorded indexes, and the FK must land on the same
    /// index id it had before the snapshot.
    pub fn add_secondary_index(&mut self, cols: Vec<usize>) -> usize {
        if let Some(existing) = self.secondary.iter().position(|idx| idx.cols == cols) {
            return existing;
        }
        let mut idx = SecondaryIndex {
            cols,
            map: FxHashMap::default(),
        };
        let mut scratch = vec![Datum::Null; self.schema.len()];
        for pos in 0..self.heap.len() {
            self.heap.copy_row_into(pos, &mut scratch);
            idx.insert(&scratch, pos);
        }
        self.secondary.push(idx);
        self.secondary.len() - 1
    }

    /// Column sets of all secondary indexes, in index-id order — recorded
    /// by catalog snapshots so restore can rebuild indexes with stable ids.
    pub fn secondary_col_sets(&self) -> Vec<Vec<usize>> {
        self.secondary.iter().map(|idx| idx.cols.clone()).collect()
    }

    /// Look up a row by unique key.
    pub fn get(&self, key: &[Datum]) -> Option<RowRef<'_>> {
        self.unique.get(key).map(|&pos| self.heap.row_ref(pos))
    }

    /// Find an index (unique or secondary) covering exactly the column set
    /// `cols`. Returns the index handle and, for each index column, its
    /// position within `cols`, so callers can permute probe keys into index
    /// order.
    pub fn index_on(&self, cols: &[usize]) -> Option<(IndexRef, Vec<usize>)> {
        let permutation = |index_cols: &[usize]| -> Option<Vec<usize>> {
            if index_cols.len() != cols.len() {
                return None;
            }
            index_cols
                .iter()
                .map(|ic| cols.iter().position(|c| c == ic))
                .collect()
        };
        if let Some(perm) = permutation(&self.key_cols) {
            return Some((IndexRef::Unique, perm));
        }
        for (i, idx) in self.secondary.iter().enumerate() {
            if let Some(perm) = permutation(&idx.cols) {
                return Some((IndexRef::Secondary(i), perm));
            }
        }
        None
    }

    /// Rows matching `key` (already in index column order) on `index`.
    pub fn index_lookup<'a>(
        &'a self,
        index: IndexRef,
        key: &[Datum],
    ) -> Box<dyn Iterator<Item = RowRef<'a>> + 'a> {
        match index {
            IndexRef::Unique => Box::new(self.get(key).into_iter()),
            IndexRef::Secondary(i) => Box::new(self.lookup_secondary(i, key)),
        }
    }

    /// True iff a row with this unique key exists.
    pub fn contains_key(&self, key: &[Datum]) -> bool {
        self.unique.contains_key(key)
    }

    /// Rows matching `key` on secondary index `idx`.
    pub fn lookup_secondary(&self, idx: usize, key: &[Datum]) -> impl Iterator<Item = RowRef<'_>> {
        self.secondary[idx]
            .map
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&pos| self.heap.row_ref(pos))
    }

    /// Number of rows matching `key` on secondary index `idx`.
    pub fn count_secondary(&self, idx: usize, key: &[Datum]) -> usize {
        self.secondary[idx].map.get(key).map_or(0, |v| v.len())
    }

    /// Number of distinct keys in secondary index `idx` — the basis for
    /// fan-out estimates (`rows / distinct`).
    pub fn secondary_distinct(&self, idx: usize) -> usize {
        self.secondary[idx].map.len()
    }

    /// Estimated rows per probe of an index: 1 for the unique index, the
    /// average bucket size for a secondary index (at least 1).
    pub fn index_fanout(&self, index: IndexRef) -> f64 {
        match index {
            IndexRef::Unique => 1.0,
            IndexRef::Secondary(i) => {
                let distinct = self.secondary_distinct(i).max(1);
                (self.heap.len() as f64 / distinct as f64).max(1.0)
            }
        }
    }

    /// Insert one row, enforcing schema and key uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        let key = key_of(&row, &self.key_cols);
        if key.iter().any(|d| d.is_null()) {
            return Err(StorageError::NullInKey {
                table: self.name.clone(),
            });
        }
        if self.unique.contains_key(&key) {
            return Err(StorageError::DuplicateKey {
                table: self.name.clone(),
                key: ojv_rel::row_display(&key),
            });
        }
        let pos = self.heap.len();
        for idx in &mut self.secondary {
            idx.insert(&row, pos);
        }
        self.unique.insert(key, pos);
        self.heap.push_row(&row);
        Ok(())
    }

    /// Delete the row with the given unique key, returning it.
    pub fn delete(&mut self, key: &[Datum]) -> Result<Row, StorageError> {
        let pos = self
            .unique
            .remove(key)
            .ok_or_else(|| StorageError::KeyNotFound {
                table: self.name.clone(),
                key: ojv_rel::row_display(key),
            })?;
        let row = self.heap.row(pos);
        for idx in &mut self.secondary {
            idx.remove(&row, pos);
        }
        let last = self.heap.len() - 1;
        self.heap.swap_remove(pos);
        // Fix up indexes for the row that moved into `pos` (if any).
        if pos < self.heap.len() {
            let moved = self.heap.row(pos);
            let moved_key = key_of(&moved, &self.key_cols);
            self.unique.insert(moved_key, pos);
            for idx in &mut self.secondary {
                idx.reposition(&moved, last, pos);
            }
        }
        Ok(row)
    }

    /// Delete all rows matching `pred`, returning them.
    pub fn delete_where(&mut self, pred: impl Fn(&Row) -> bool) -> Vec<Row> {
        let keys: Vec<Vec<Datum>> = self
            .iter_rows()
            .filter(|r| pred(r))
            .map(|r| key_of(&r, &self.key_cols))
            .collect();
        keys.iter()
            .map(|k| self.delete(k).expect("key collected from live rows"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_rel::{Column, DataType, Schema};

    fn table() -> Table {
        let schema = Schema::shared(vec![
            Column::new("t", "id", DataType::Int, false),
            Column::new("t", "grp", DataType::Int, false),
            Column::new("t", "val", DataType::Str, true),
        ])
        .unwrap();
        Table::new("t", schema, vec![0]).unwrap()
    }

    fn row(id: i64, grp: i64, val: &str) -> Row {
        vec![Datum::Int(id), Datum::Int(grp), Datum::str(val)]
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = table();
        t.insert(row(1, 10, "a")).unwrap();
        t.insert(row(2, 10, "b")).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&[Datum::Int(1)]).unwrap().datum(2), Datum::str("a"));
        let deleted = t.delete(&[Datum::Int(1)]).unwrap();
        assert_eq!(deleted[0], Datum::Int(1));
        assert!(t.get(&[Datum::Int(1)]).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = table();
        t.insert(row(1, 10, "a")).unwrap();
        assert!(matches!(
            t.insert(row(1, 11, "b")),
            Err(StorageError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn delete_missing_key_errors() {
        let mut t = table();
        assert!(matches!(
            t.delete(&[Datum::Int(99)]),
            Err(StorageError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn nullable_key_column_rejected_at_create() {
        let schema = Schema::shared(vec![Column::new("t", "id", DataType::Int, true)]).unwrap();
        assert!(matches!(
            Table::new("t", schema, vec![0]),
            Err(StorageError::NullInKey { .. })
        ));
    }

    #[test]
    fn swap_remove_keeps_unique_index_consistent() {
        let mut t = table();
        for i in 0..10 {
            t.insert(row(i, i % 3, "x")).unwrap();
        }
        // Delete from the middle repeatedly; lookups must stay correct.
        t.delete(&[Datum::Int(0)]).unwrap();
        t.delete(&[Datum::Int(5)]).unwrap();
        t.delete(&[Datum::Int(9)]).unwrap();
        for i in [1i64, 2, 3, 4, 6, 7, 8] {
            assert_eq!(t.get(&[Datum::Int(i)]).unwrap().datum(0), Datum::Int(i));
        }
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn secondary_index_tracks_mutations() {
        let mut t = table();
        let idx = t.add_secondary_index(vec![1]);
        for i in 0..9 {
            t.insert(row(i, i % 3, "x")).unwrap();
        }
        assert_eq!(t.count_secondary(idx, &[Datum::Int(0)]), 3);
        t.delete(&[Datum::Int(0)]).unwrap();
        t.delete(&[Datum::Int(3)]).unwrap();
        assert_eq!(t.count_secondary(idx, &[Datum::Int(0)]), 1);
        let hits: Vec<_> = t.lookup_secondary(idx, &[Datum::Int(0)]).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].datum(0), Datum::Int(6));
    }

    #[test]
    fn secondary_index_built_over_existing_rows() {
        let mut t = table();
        for i in 0..6 {
            t.insert(row(i, i % 2, "x")).unwrap();
        }
        let idx = t.add_secondary_index(vec![1]);
        assert_eq!(t.count_secondary(idx, &[Datum::Int(1)]), 3);
    }

    #[test]
    fn delete_where_returns_deleted_rows() {
        let mut t = table();
        for i in 0..6 {
            t.insert(row(i, i % 2, "x")).unwrap();
        }
        let deleted = t.delete_where(|r| r[1] == Datum::Int(0));
        assert_eq!(deleted.len(), 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn null_in_key_value_rejected() {
        // A nullable column sneaking a null into the key is impossible by
        // construction (key cols must be non-nullable), but check_row also
        // rejects nulls in non-nullable columns.
        let mut t = table();
        assert!(t
            .insert(vec![Datum::Null, Datum::Int(0), Datum::Null])
            .is_err());
    }

    #[test]
    fn heap_order_matches_insert_then_swap_remove_model() {
        // The heap must report rows in exactly the order the old
        // `Vec<Row>` + swap_remove storage did: checkpoint bytes and
        // restore determinism depend on it.
        let mut t = table();
        let mut model: Vec<Row> = Vec::new();
        for i in 0..50 {
            let r = row(i, i % 7, "v");
            t.insert(r.clone()).unwrap();
            model.push(r);
        }
        for key in [0i64, 25, 49, 13] {
            let pos = model.iter().position(|r| r[0] == Datum::Int(key)).unwrap();
            t.delete(&[Datum::Int(key)]).unwrap();
            model.swap_remove(pos);
        }
        let got: Vec<Row> = t.iter_rows().collect();
        assert_eq!(got, model);
    }
}
