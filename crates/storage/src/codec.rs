//! Binary encoding for [`Update`] batches and whole-[`Catalog`] snapshots.
//!
//! This sits on top of `ojv_rel::codec` (datum/row layer) and supplies the
//! storage-level framing the durable maintenance log needs:
//!
//! * [`encode_update`] / [`decode_update`] — the WAL record payload for one
//!   applied batch. Rows are self-describing, but the row *schema* is not
//!   serialized: decode resolves the table name against the live catalog,
//!   exactly as recovery does (the catalog at replay time is the
//!   checkpointed catalog, which the batch was originally applied against
//!   or after).
//! * [`encode_catalog`] / [`decode_catalog`] — the catalog section of a
//!   checkpoint: every table's schema, key, secondary-index column sets,
//!   and rows in heap order, plus declared foreign keys and the
//!   enforcement flag.
//!
//! ## Restore determinism
//!
//! Decoding rebuilds tables through the same public construction path used
//! originally (`create_table`, `add_secondary_index`, per-row `insert`), in
//! recorded heap order. With the deterministic fx hasher this reproduces
//! not just equal contents but identical iteration behavior, which is what
//! lets recovered state be *byte*-identical to the pre-crash state when
//! re-encoded. Foreign keys are re-declared via `add_foreign_key` after the
//! recorded secondary indexes are rebuilt; `Table::add_secondary_index`
//! dedupes by column set, so each FK lands on the same index id it had
//! before the snapshot.

use ojv_rel::{put_row, put_str, put_u32, ByteReader, Column, DataType, RelError, Relation};

use crate::catalog::Catalog;
use crate::delta::{Update, UpdateOp};
use crate::error::StorageError;

fn dt_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Date => 4,
    }
}

fn dt_from_tag(tag: u8) -> Result<DataType, RelError> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Date,
        other => {
            return Err(RelError::Codec {
                detail: format!("unknown data-type tag {other}"),
            })
        }
    })
}

fn put_usize(buf: &mut Vec<u8>, v: usize, what: &str) -> Result<(), RelError> {
    let v = u32::try_from(v).map_err(|_| RelError::Codec {
        detail: format!("{what} of {v} exceeds u32 framing"),
    })?;
    put_u32(buf, v);
    Ok(())
}

fn codec_err(detail: impl Into<String>) -> StorageError {
    StorageError::InvalidConstraint {
        detail: format!("codec: {}", detail.into()),
    }
}

// ---------------------------------------------------------------------------
// Update batches (WAL payloads)
// ---------------------------------------------------------------------------

/// Encode one applied batch: table name, op, and full rows.
pub fn encode_update(update: &Update) -> Result<Vec<u8>, RelError> {
    let mut buf = Vec::new();
    put_str(&mut buf, &update.table)?;
    buf.push(match update.op {
        UpdateOp::Insert => 0,
        UpdateOp::Delete => 1,
    });
    put_usize(&mut buf, update.rows.len(), "update row count")?;
    for row in update.rows.rows() {
        put_row(&mut buf, row)?;
    }
    Ok(buf)
}

/// Decode an update batch, resolving the row schema through `catalog`.
pub fn decode_update(data: &[u8], catalog: &Catalog) -> Result<Update, StorageError> {
    let mut r = ByteReader::new(data);
    let table = r
        .str("update table name")
        .map_err(|e| codec_err(e.to_string()))?
        .to_string();
    let op = match r.u8("update op").map_err(|e| codec_err(e.to_string()))? {
        0 => UpdateOp::Insert,
        1 => UpdateOp::Delete,
        other => return Err(codec_err(format!("unknown update op tag {other}"))),
    };
    let schema = catalog.table(&table)?.schema().clone();
    let count = r
        .u32("update row count")
        .map_err(|e| codec_err(e.to_string()))? as usize; // lint:allow(cast) — u32 widens into usize
    let mut rows = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        rows.push(r.row().map_err(|e| codec_err(e.to_string()))?);
    }
    if !r.is_empty() {
        return Err(codec_err(format!(
            "{} trailing bytes after update batch",
            r.remaining()
        )));
    }
    Ok(Update {
        table,
        op,
        rows: Relation::new(schema, rows),
    })
}

// ---------------------------------------------------------------------------
// Catalog snapshots (checkpoint payloads)
// ---------------------------------------------------------------------------

/// Encode the full catalog: schemas, keys, secondary index definitions,
/// rows in heap order, foreign keys, and the enforcement flag.
pub fn encode_catalog(catalog: &Catalog) -> Result<Vec<u8>, RelError> {
    let mut buf = Vec::new();
    let tables: Vec<_> = catalog.tables().collect();
    put_usize(&mut buf, tables.len(), "table count")?;
    for t in &tables {
        put_str(&mut buf, t.name())?;
        let schema = t.schema();
        put_usize(&mut buf, schema.len(), "column count")?;
        for col in schema.columns() {
            put_str(&mut buf, &col.qualifier)?;
            put_str(&mut buf, &col.name)?;
            buf.push(dt_tag(col.ty));
            buf.push(u8::from(col.nullable));
        }
        put_usize(&mut buf, t.key_cols().len(), "key column count")?;
        for &c in t.key_cols() {
            put_usize(&mut buf, c, "key column index")?;
        }
        let secondary = t.secondary_col_sets();
        put_usize(&mut buf, secondary.len(), "secondary index count")?;
        for cols in &secondary {
            put_usize(&mut buf, cols.len(), "secondary column count")?;
            for &c in cols {
                put_usize(&mut buf, c, "secondary column index")?;
            }
        }
        put_usize(&mut buf, t.len(), "row count")?;
        let mut scratch = vec![ojv_rel::Datum::Null; t.schema().len()];
        for pos in 0..t.len() {
            t.heap().copy_row_into(pos, &mut scratch);
            put_row(&mut buf, &scratch)?;
        }
    }
    let fks = catalog.foreign_keys();
    put_usize(&mut buf, fks.len(), "foreign key count")?;
    for fk in fks {
        put_str(&mut buf, &fk.name)?;
        put_str(&mut buf, &fk.child)?;
        put_str(&mut buf, &fk.parent)?;
        put_usize(&mut buf, fk.child_cols.len(), "fk column count")?;
        for &c in &fk.child_cols {
            put_usize(&mut buf, c, "fk column index")?;
        }
        buf.push(u8::from(fk.cascade_delete));
        buf.push(u8::from(fk.deferrable));
    }
    buf.push(u8::from(catalog.enforce_constraints));
    Ok(buf)
}

/// Rebuild a catalog from [`encode_catalog`] bytes.
pub fn decode_catalog(data: &[u8]) -> Result<Catalog, StorageError> {
    let mut r = ByteReader::new(data);
    let rd = |e: RelError| codec_err(e.to_string());
    let mut catalog = Catalog::new();
    // Row loads below must not trip FK checks (children may decode before
    // parents); the recorded flag is restored at the end.
    catalog.enforce_constraints = false;

    let n_tables = r.u32("table count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
    for _ in 0..n_tables {
        let name = r.str("table name").map_err(rd)?.to_string();
        let n_cols = r.u32("column count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
        let mut columns = Vec::with_capacity(n_cols.min(r.remaining()));
        for _ in 0..n_cols {
            let qualifier = r.str("column qualifier").map_err(rd)?.to_string();
            let col_name = r.str("column name").map_err(rd)?.to_string();
            let ty = dt_from_tag(r.u8("column type").map_err(rd)?).map_err(rd)?;
            let nullable = r.u8("column nullable").map_err(rd)? != 0;
            columns.push(Column {
                qualifier,
                name: col_name,
                ty,
                nullable,
            });
        }
        let n_key = r.u32("key column count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
        let mut key_names: Vec<String> = Vec::with_capacity(n_key.min(r.remaining()));
        for _ in 0..n_key {
            let idx = r.u32("key column index").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
            let col = columns
                .get(idx)
                .ok_or_else(|| codec_err(format!("key column #{idx} out of range in {name}")))?;
            key_names.push(col.name.clone());
        }
        let key_refs: Vec<&str> = key_names.iter().map(String::as_str).collect();
        catalog.create_table(&name, columns, &key_refs)?;

        let n_secondary = r.u32("secondary index count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
        for _ in 0..n_secondary {
            let n = r.u32("secondary column count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
            let mut cols = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                cols.push(r.u32("secondary column index").map_err(rd)? as usize);
                // lint:allow(cast) — u32 widens into usize
            }
            catalog.table_mut(&name)?.add_secondary_index(cols);
        }

        let n_rows = r.u32("row count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
        let table = catalog.table_mut(&name)?;
        for _ in 0..n_rows {
            let row = r.row().map_err(rd)?;
            table.insert(row)?;
        }
    }

    let n_fks = r.u32("foreign key count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
    for _ in 0..n_fks {
        let fk_name = r.str("fk name").map_err(rd)?.to_string();
        let child = r.str("fk child").map_err(rd)?.to_string();
        let parent = r.str("fk parent").map_err(rd)?.to_string();
        let n = r.u32("fk column count").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
        let mut col_names: Vec<String> = Vec::with_capacity(n.min(r.remaining()));
        {
            let child_schema = catalog.table(&child)?.schema().clone();
            for _ in 0..n {
                let idx = r.u32("fk column index").map_err(rd)? as usize; // lint:allow(cast) — u32 widens into usize
                if idx >= child_schema.len() {
                    return Err(codec_err(format!(
                        "fk column #{idx} out of range in {child}"
                    )));
                }
                col_names.push(child_schema.column(idx).name.clone());
            }
        }
        let cascade = r.u8("fk cascade flag").map_err(rd)? != 0;
        let deferrable = r.u8("fk deferrable flag").map_err(rd)? != 0;
        let col_refs: Vec<&str> = col_names.iter().map(String::as_str).collect();
        catalog.add_foreign_key(&fk_name, &child, &col_refs, &parent)?;
        let fk = catalog
            .foreign_keys_mut()
            .last_mut()
            .expect("fk just added");
        fk.cascade_delete = cascade;
        fk.deferrable = deferrable;
    }

    catalog.enforce_constraints = r.u8("enforce flag").map_err(rd)? != 0;
    if !r.is_empty() {
        return Err(codec_err(format!(
            "{} trailing bytes after catalog snapshot",
            r.remaining()
        )));
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_rel::Datum;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "parent",
            vec![
                Column::new("parent", "pk", DataType::Int, false),
                Column::new("parent", "v", DataType::Float, true),
                Column::new("parent", "s", DataType::Str, true),
            ],
            &["pk"],
        )
        .unwrap();
        c.create_table(
            "child",
            vec![
                Column::new("child", "ck", DataType::Int, false),
                Column::new("child", "fk", DataType::Int, false),
                Column::new("child", "d", DataType::Date, true),
            ],
            &["ck"],
        )
        .unwrap();
        c.add_foreign_key("fk_child_parent", "child", &["fk"], "parent")
            .unwrap();
        c.insert(
            "parent",
            vec![
                vec![Datum::Int(1), Datum::Float(-0.0), Datum::str("a")],
                vec![Datum::Int(2), Datum::Null, Datum::Null],
            ],
        )
        .unwrap();
        c.insert(
            "child",
            vec![
                vec![Datum::Int(10), Datum::Int(1), Datum::Date(123)],
                vec![Datum::Int(11), Datum::Int(2), Datum::Null],
            ],
        )
        .unwrap();
        c
    }

    #[test]
    fn update_round_trip() {
        let mut c = sample_catalog();
        let up = c
            .insert(
                "parent",
                vec![vec![Datum::Int(3), Datum::Float(2.5), Datum::str("z")]],
            )
            .unwrap();
        let bytes = encode_update(&up).unwrap();
        let back = decode_update(&bytes, &c).unwrap();
        assert_eq!(back.table, up.table);
        assert_eq!(back.op, up.op);
        assert_eq!(back.rows.rows(), up.rows.rows());
    }

    #[test]
    fn catalog_round_trip_is_byte_stable() {
        let c = sample_catalog();
        let bytes = encode_catalog(&c).unwrap();
        let restored = decode_catalog(&bytes).unwrap();
        // Re-encoding the restored catalog must reproduce identical bytes:
        // this is the property recovery's differential tests lean on.
        let bytes2 = encode_catalog(&restored).unwrap();
        assert_eq!(bytes, bytes2);
        // Structural spot checks.
        assert_eq!(restored.table("parent").unwrap().len(), 2);
        assert_eq!(restored.foreign_keys().len(), 1);
        assert!(restored.enforce_constraints);
        // The FK restrict check still works (its secondary index is wired).
        let mut restored = restored;
        assert!(restored.delete("parent", &[vec![Datum::Int(1)]]).is_err());
    }

    #[test]
    fn fk_index_id_survives_restore_with_extra_secondary_indexes() {
        let mut c = sample_catalog();
        // An extra secondary index *before* encoding, plus the FK's own:
        // restore must not duplicate either.
        c.table_mut("child").unwrap().add_secondary_index(vec![2]);
        let n_before = c.table("child").unwrap().secondary_col_sets().len();
        let restored = decode_catalog(&encode_catalog(&c).unwrap()).unwrap();
        assert_eq!(
            restored.table("child").unwrap().secondary_col_sets().len(),
            n_before
        );
        assert_eq!(
            restored.table("child").unwrap().secondary_col_sets(),
            c.table("child").unwrap().secondary_col_sets()
        );
    }

    #[test]
    fn truncated_snapshot_errors_cleanly() {
        let bytes = encode_catalog(&sample_catalog()).unwrap();
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_catalog(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn update_against_unknown_table_errors() {
        let c = sample_catalog();
        let mut buf = Vec::new();
        put_str(&mut buf, "nonexistent").unwrap();
        buf.push(0);
        put_u32(&mut buf, 0);
        assert!(matches!(
            decode_update(&buf, &c),
            Err(StorageError::UnknownTable { .. })
        ));
    }
}
