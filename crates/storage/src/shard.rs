//! Hash-partitioning primitives: shard identity and key routing.
//!
//! A [`ShardRouter`] deterministically maps a routing key (a column subset
//! of a row, hashed with the engine's fx hasher) to a [`ShardId`]. Routing
//! is *key-aligned* sharding's whole contract: two rows that agree on their
//! routing columns land on the same shard, for any table, so equijoins on
//! those columns never cross shard boundaries (Mistry et al.: shared
//! maintenance plans survive partitioning exactly when the partitioning is
//! key-aligned).
//!
//! `ShardId` construction is confined to this module and `core::shard` —
//! enforced by the `shard-routing-confined` xtask lint — so no caller can
//! fabricate a shard id and bypass the router.

use ojv_rel::{key_hash, key_hash_with, Datum, DatumRef};

use crate::heap::RowRef;

/// Identity of one shard: a dense index in `0..shard_count`.
///
/// Only [`ShardRouter::route_*`] and `core::shard` may construct these
/// (lint: `shard-routing-confined`); everyone else receives them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(u16);

impl ShardId {
    /// Construct a shard id from a dense index. Confined to routing code
    /// and the `ShardedDatabase` facade by the `shard-routing-confined`
    /// lint; arbitrary construction would bypass the router's alignment
    /// guarantee.
    pub fn new(index: usize) -> ShardId {
        ShardId(u16::try_from(index).expect("shard index fits u16"))
    }

    /// The dense index in `0..shard_count`.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Deterministic hash router over `n` shards.
///
/// The routing hash is [`key_hash`] — the same deterministic fx stream the
/// join hash tables use — so `Int(2)` and `Float(2.0)` route identically
/// (they hash identically by construction), and a single-shard router maps
/// everything to shard 0, which is what makes the N=1 facade an exact twin
/// of the unsharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u16,
}

impl ShardRouter {
    /// A router over `shards` shards (at least 1).
    pub fn new(shards: usize) -> ShardRouter {
        assert!(shards >= 1, "a router needs at least one shard");
        ShardRouter {
            shards: u16::try_from(shards).expect("shard count fits u16"),
        }
    }

    pub fn shard_count(self) -> usize {
        usize::from(self.shards)
    }

    #[inline]
    fn of_hash(self, h: u64) -> ShardId {
        // Upper-bits mix: fx's low bits are its weakest, and the count is
        // tiny, so fold the high half in before reducing.
        let mixed = h ^ (h >> 32);
        ShardId((mixed % u64::from(self.shards)) as u16)
    }

    /// Route a row by its routing columns.
    #[inline]
    pub fn route(self, row: &[Datum], cols: &[usize]) -> ShardId {
        self.of_hash(key_hash(row, cols))
    }

    /// Route an owned key (columns already extracted, in routing order).
    #[inline]
    pub fn route_key(self, key: &[Datum]) -> ShardId {
        let all: Vec<usize> = (0..key.len()).collect();
        self.of_hash(key_hash(key, &all))
    }

    /// Route a columnar row by its routing columns without materializing.
    #[inline]
    pub fn route_ref(self, row: RowRef<'_>, cols: &[usize]) -> ShardId {
        self.of_hash(key_hash_with(cols, |c| row.dat(c)))
    }

    /// Route by accessor — for callers holding neither a slice nor a
    /// [`RowRef`] (e.g. wide rows resolved through a layout).
    #[inline]
    pub fn route_with<'a>(self, cols: &[usize], get: impl Fn(usize) -> DatumRef<'a>) -> ShardId {
        self.of_hash(key_hash_with(cols, get))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for i in 0..100 {
            assert_eq!(r.route(&[Datum::Int(i)], &[0]).index(), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_only_reads_routing_cols() {
        let r = ShardRouter::new(4);
        let a = vec![Datum::Int(7), Datum::str("x")];
        let b = vec![Datum::Int(7), Datum::str("completely different")];
        assert_eq!(r.route(&a, &[0]), r.route(&b, &[0]));
    }

    #[test]
    fn int_float_keys_route_identically() {
        // Numeric widening must not split a key across shards.
        let r = ShardRouter::new(8);
        assert_eq!(
            r.route(&[Datum::Int(42)], &[0]),
            r.route(&[Datum::Float(42.0)], &[0])
        );
    }

    #[test]
    fn route_key_matches_route() {
        let r = ShardRouter::new(5);
        let row = vec![Datum::str("pad"), Datum::Int(9), Datum::Date(11)];
        assert_eq!(
            r.route(&row, &[1, 2]),
            r.route_key(&[Datum::Int(9), Datum::Date(11)])
        );
    }

    #[test]
    fn shards_get_reasonable_spread() {
        let r = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[r.route(&[Datum::Int(i)], &[0]).index()] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 1500, "shard {s} got {c} of 10000");
        }
    }
}
