//! Storage-layer errors.

use std::fmt;

use ojv_rel::RelError;

/// Errors raised by table and catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Inserting a row whose unique key already exists.
    DuplicateKey { table: String, key: String },
    /// A referenced table does not exist in the catalog.
    UnknownTable { name: String },
    /// A referenced column does not exist in the table.
    UnknownColumn { table: String, column: String },
    /// Deleting a row that does not exist.
    KeyNotFound { table: String, key: String },
    /// Inserting a child row whose parent is missing, or deleting a parent
    /// row that still has children.
    ForeignKeyViolation { constraint: String, detail: String },
    /// A key column was declared nullable, or a key value contained nulls.
    NullInKey { table: String },
    /// Schema/row mismatch from the data-model layer.
    Rel(RelError),
    /// Invalid constraint declaration (e.g. FK not targeting the parent key).
    InvalidConstraint { detail: String },
    /// A view layout references more tables than a `TableSet` can index.
    TooManyTables { count: usize, max: usize },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table {table}")
            }
            StorageError::UnknownTable { name } => write!(f, "unknown table {name}"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            StorageError::KeyNotFound { table, key } => {
                write!(f, "key {key} not found in table {table}")
            }
            StorageError::ForeignKeyViolation { constraint, detail } => {
                write!(f, "foreign key violation ({constraint}): {detail}")
            }
            StorageError::NullInKey { table } => {
                write!(f, "null in unique key of table {table}")
            }
            StorageError::Rel(e) => write!(f, "{e}"),
            StorageError::InvalidConstraint { detail } => {
                write!(f, "invalid constraint: {detail}")
            }
            StorageError::TooManyTables { count, max } => {
                write!(f, "view references {count} tables; at most {max} supported")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<RelError> for StorageError {
    fn from(e: RelError) -> Self {
        StorageError::Rel(e)
    }
}
