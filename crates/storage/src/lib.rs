//! In-memory storage substrate.
//!
//! Provides the base-table layer the view-maintenance engine sits on:
//!
//! * [`Table`] — a heap of rows with a mandatory non-null unique key backed
//!   by a hash index, plus optional secondary indexes,
//! * [`Catalog`] — the set of tables and declared [`ForeignKey`] constraints,
//!   with enforcement (unique keys, FK parent existence on insert, FK restrict
//!   on delete),
//! * [`Update`] — an applied batch change (`ΔT`), the input to view
//!   maintenance.
//!
//! The paper (§2) requires every base table to have a unique key that does
//! not contain nulls; [`Table`] enforces exactly that. Foreign keys are
//! declared against the parent's unique key, matching §6's assumption that an
//! FK references "a non-null, unique key".

#![forbid(unsafe_code)]

pub mod catalog;
pub mod codec;
pub mod delta;
pub mod error;
pub mod heap;
pub mod shard;
pub mod table;

pub use catalog::{Catalog, ForeignKey};
pub use codec::{decode_catalog, decode_update, encode_catalog, encode_update};
pub use delta::{Update, UpdateOp};
pub use error::StorageError;
pub use heap::{ColumnHeap, RowRef, SEG_ROWS};
pub use shard::{ShardId, ShardRouter};
pub use table::{IndexRef, Table};
