//! Applied update batches (`ΔT`).

use ojv_rel::Relation;

/// Whether an update batch inserted or deleted rows.
///
/// Following the paper (§3), an SQL `UPDATE` is modeled as a delete followed
/// by an insert; when a maintenance client does that decomposition it must
/// mark the pair as an update-decomposition so the §6 foreign-key fast paths
/// are not applied (see `ojv_core::MaintenancePolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    Insert,
    Delete,
}

impl UpdateOp {
    /// The opposite operation — applying a secondary delta uses the inverse
    /// of the primary operation (paper §3.2).
    pub fn inverse(self) -> UpdateOp {
        match self {
            UpdateOp::Insert => UpdateOp::Delete,
            UpdateOp::Delete => UpdateOp::Insert,
        }
    }
}

/// An applied batch change to one base table: the table name, the operation,
/// and the affected rows (full rows in the table's schema).
#[derive(Debug, Clone)]
pub struct Update {
    pub table: String,
    pub op: UpdateOp,
    pub rows: Relation,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_flips() {
        assert_eq!(UpdateOp::Insert.inverse(), UpdateOp::Delete);
        assert_eq!(UpdateOp::Delete.inverse(), UpdateOp::Insert);
    }
}
