//! Model-based property test: a `Table` under random insert/delete
//! sequences must behave exactly like a `BTreeMap` keyed by the unique key,
//! and its secondary indexes must stay consistent with full scans.

use std::collections::BTreeMap;

use ojv_testkit::{property, strategy, vec_of, Rng, Strategy};

use ojv_rel::{Column, DataType, Datum, Row};
use ojv_storage::{StorageError, Table};

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, grp: i64 },
    Delete { id: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    strategy(
        |rng: &mut Rng| {
            if rng.gen_bool(0.5) {
                Op::Insert {
                    id: rng.gen_range(0i64..20),
                    grp: rng.gen_range(0i64..4),
                }
            } else {
                Op::Delete {
                    id: rng.gen_range(0i64..20),
                }
            }
        },
        |op: &Op| match op {
            Op::Insert { id, grp } => {
                let mut out = vec![Op::Delete { id: *id }];
                if *id > 0 {
                    out.push(Op::Insert {
                        id: id - 1,
                        grp: *grp,
                    });
                }
                if *grp > 0 {
                    out.push(Op::Insert {
                        id: *id,
                        grp: grp - 1,
                    });
                }
                out
            }
            Op::Delete { id } if *id > 0 => vec![Op::Delete { id: id - 1 }],
            Op::Delete { .. } => Vec::new(),
        },
    )
}

fn table() -> Table {
    let schema = ojv_rel::Schema::shared(vec![
        Column::new("t", "id", DataType::Int, false),
        Column::new("t", "grp", DataType::Int, false),
    ])
    .unwrap();
    Table::new("t", schema, vec![0]).unwrap()
}

property! {
    #[cases = 256]
    fn table_matches_btreemap_model(ops in vec_of(op_strategy(), 0..60)) {
        let mut t = table();
        let grp_idx = t.add_secondary_index(vec![1]);
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { id, grp } => {
                    let row: Row = vec![Datum::Int(id), Datum::Int(grp)];
                    let result = t.insert(row);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(id) {
                        assert!(result.is_ok());
                        e.insert(grp);
                    } else {
                        let dup = matches!(result, Err(StorageError::DuplicateKey { .. }));
                        assert!(dup);
                    }
                }
                Op::Delete { id } => {
                    let result = t.delete(&[Datum::Int(id)]);
                    match model.remove(&id) {
                        Some(grp) => {
                            let row = result.expect("model says the key exists");
                            assert_eq!(row[1].clone(), Datum::Int(grp));
                        }
                        None => {
                            let missing = matches!(result, Err(StorageError::KeyNotFound { .. }));
                            assert!(missing);
                        }
                    }
                }
            }
            // Invariants after every step.
            assert_eq!(t.len(), model.len());
            for (&id, &grp) in &model {
                let row = t.get(&[Datum::Int(id)]).expect("model row present");
                assert_eq!(row.datum(1), Datum::Int(grp));
            }
            // Secondary index agrees with a scan.
            for g in 0..4i64 {
                let via_index = t.count_secondary(grp_idx, &[Datum::Int(g)]);
                let via_scan = t.iter_refs().filter(|r| r.datum(1) == Datum::Int(g)).count();
                assert_eq!(via_index, via_scan, "group {}", g);
                let hits: Vec<i64> = t
                    .lookup_secondary(grp_idx, &[Datum::Int(g)])
                    .map(|r| r.datum(0).as_int().unwrap())
                    .collect();
                assert_eq!(hits.len(), via_scan);
            }
        }
    }

    #[cases = 256]
    fn index_on_finds_permuted_key(cols in vec_of(0usize..2, 1..3)) {
        let t = table();
        // The unique key is column 0; index_on must find it only for [0].
        let found = t.index_on(&cols);
        if cols == vec![0] {
            assert!(found.is_some());
        } else {
            assert!(found.is_none());
        }
    }
}
