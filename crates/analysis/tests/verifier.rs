//! Golden negative tests: hand-built corrupted plans must trip the exact
//! invariant id, and well-formed equivalents must verify clean.

use ojv_algebra::{
    Atom, ColRef, Expr, MaintenanceGraph, Pred, SubsumptionGraph, TableId, TableSet, Term,
};
use ojv_analysis::{
    verify_delta_arity, verify_jdnf, verify_layout, verify_left_deep, verify_maintenance_graph,
    verify_plan, verify_secondary_from_view, Invariant,
};
use ojv_exec::ViewLayout;
use ojv_rel::{Column, DataType};
use ojv_storage::Catalog;

fn t(i: u8) -> TableId {
    TableId(i)
}

fn eq(a: u8, ac: usize, b: u8, bc: usize) -> Pred {
    Pred::atom(Atom::eq(ColRef::new(t(a), ac), ColRef::new(t(b), bc)))
}

fn term(ids: &[u8]) -> Term {
    Term {
        tables: TableSet::from_iter(ids.iter().map(|&i| t(i))),
        pred: Pred::true_(),
    }
}

/// Two tables: a(id, x) keyed on id, b(id, aid, y) keyed on id.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "a",
        vec![
            Column::new("a", "id", DataType::Int, false),
            Column::new("a", "x", DataType::Str, true),
        ],
        &["id"],
    )
    .unwrap();
    c.create_table(
        "b",
        vec![
            Column::new("b", "id", DataType::Int, false),
            Column::new("b", "aid", DataType::Int, false),
            Column::new("b", "y", DataType::Float, true),
        ],
        &["id"],
    )
    .unwrap();
    c
}

fn layout() -> ViewLayout {
    ViewLayout::new(&catalog(), &["a", "b"]).unwrap()
}

// ---- corrupted-plan class 1: duplicate source set ------------------------

#[test]
fn duplicate_source_set_is_rejected() {
    let g = SubsumptionGraph::new(vec![term(&[0, 1]), term(&[0]), term(&[0])]);
    let v = verify_jdnf(&g).unwrap_err();
    assert_eq!(v.invariant, Invariant::JdnfUniqueSources);
    assert_eq!(v.invariant.id(), "JDNF-UNIQUE-SOURCES");
    assert!(v.detail.contains("source set"), "{v}");
}

#[test]
fn well_formed_jdnf_verifies_clean() {
    let g = SubsumptionGraph::new(vec![term(&[0, 1]), term(&[0]), term(&[1])]);
    assert!(verify_jdnf(&g).unwrap() > 0);
}

// ---- corrupted-plan class 2: missing δ after rule 5 ----------------------

#[test]
fn null_if_without_cleanup_is_rejected() {
    let l = layout();
    // Rule 5's output with the δ stripped: λ over a left-deep join spine.
    let bare = Expr::NullIf {
        null_tables: TableSet::singleton(t(1)),
        pred: Pred::atom(Atom::Const(
            ColRef::new(t(1), 1),
            ojv_algebra::CmpOp::Ge,
            ojv_rel::Datum::Int(0),
        )),
        input: Box::new(Expr::left_outer(
            eq(0, 0, 1, 1),
            Expr::Delta(t(0)),
            Expr::table(t(1)),
        )),
    };
    let v = verify_plan(&l, &bare, Some(t(0))).unwrap_err();
    assert_eq!(v.invariant, Invariant::LeftDeepMissingDelta);
    assert_eq!(v.invariant.id(), "LEFTDEEP-MISSING-DELTA");

    // The same plan with the δ restored verifies clean.
    let fixed = Expr::CleanDup(Box::new(bare));
    assert!(verify_plan(&l, &fixed, Some(t(0))).unwrap() > 0);
    assert_eq!(verify_left_deep(&fixed).unwrap(), 1);
}

#[test]
fn null_if_scope_must_cover_predicate() {
    let l = layout();
    // λ predicate references table a (t0), but only b (t1) is nulled.
    let bad = Expr::CleanDup(Box::new(Expr::NullIf {
        null_tables: TableSet::singleton(t(1)),
        pred: eq(0, 0, 1, 1),
        input: Box::new(Expr::left_outer(
            eq(0, 0, 1, 1),
            Expr::Delta(t(0)),
            Expr::table(t(1)),
        )),
    }));
    let v = verify_plan(&l, &bad, Some(t(0))).unwrap_err();
    assert_eq!(v.invariant, Invariant::LeftDeepNullIfScope);
    assert!(v.path.contains('δ'), "path should descend through δ: {v}");
}

// ---- corrupted-plan class 3: secondary delta over a projected-away key ---

#[test]
fn secondary_over_projected_away_key_is_rejected() {
    let l = layout();
    let b_only = term(&[1]);
    // Projection keeps a.id, a.x, b.y — but drops b's key (global col 2).
    let v = verify_secondary_from_view(&l, &b_only, &[0, 1, 4]).unwrap_err();
    assert_eq!(v.invariant, Invariant::SecondaryKeyProjected);
    assert_eq!(v.invariant.id(), "SECONDARY-KEY-PROJECTED");

    // Keeping the key but no non-nullable column of the table is equally
    // unusable: null(b) cannot be evaluated on view rows... except b.id is
    // itself non-nullable, so the key alone suffices here.
    assert!(verify_secondary_from_view(&l, &b_only, &[0, 2]).unwrap() > 0);

    // A term over table a whose projection keeps only a.x (nullable): the
    // key is gone and so is every null-test column.
    let a_only = term(&[0]);
    let v = verify_secondary_from_view(&l, &a_only, &[1]).unwrap_err();
    assert_eq!(v.invariant, Invariant::SecondaryKeyProjected);
}

// ---- corrupted-plan class 4: stride mismatch after widening --------------

#[test]
fn stride_mismatch_after_widening_is_rejected() {
    let l = layout();
    // The same tables in a different catalog where `a` grew a column: rows
    // widened with the stale layout would land b's columns two short.
    let mut grown = Catalog::new();
    grown
        .create_table(
            "a",
            vec![
                Column::new("a", "id", DataType::Int, false),
                Column::new("a", "x", DataType::Str, true),
                Column::new("a", "z", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
    grown
        .create_table(
            "b",
            vec![
                Column::new("b", "id", DataType::Int, false),
                Column::new("b", "aid", DataType::Int, false),
                Column::new("b", "y", DataType::Float, true),
            ],
            &["id"],
        )
        .unwrap();
    let v = verify_layout(&l, Some(&grown)).unwrap_err();
    assert_eq!(v.invariant, Invariant::LayoutWiden);
    assert_eq!(v.invariant.id(), "LAYOUT-WIDEN");
    assert!(v.detail.contains("stride"), "{v}");

    // Against its own catalog the layout verifies clean.
    assert!(verify_layout(&l, Some(&catalog())).unwrap() > 0);
    assert!(verify_layout(&l, None).unwrap() > 0);
}

#[test]
fn delta_arity_mismatch_is_rejected() {
    let l = layout();
    let v = verify_delta_arity(&l, t(1), 2).unwrap_err();
    assert_eq!(v.invariant, Invariant::DeltaArity);
    assert!(verify_delta_arity(&l, t(1), 3).is_ok());
}

// ---- plan-tree structural checks -----------------------------------------

#[test]
fn join_over_shared_sources_is_rejected() {
    let l = layout();
    let bad = Expr::inner(eq(0, 0, 1, 1), Expr::table(t(0)), Expr::table(t(0)));
    let v = verify_plan(&l, &bad, None).unwrap_err();
    assert_eq!(v.invariant, Invariant::PlanJoinOverlap);
}

#[test]
fn predicate_out_of_scope_is_rejected() {
    let l = layout();
    // Selection over table a referencing table b.
    let bad = Expr::select(eq(0, 0, 1, 1), Expr::table(t(0)));
    let v = verify_plan(&l, &bad, None).unwrap_err();
    assert_eq!(v.invariant, Invariant::PlanPredScope);
}

#[test]
fn predicate_column_out_of_range_is_rejected() {
    let l = layout();
    // a has 2 columns; a.c7 is out of range.
    let bad = Expr::select(
        Pred::atom(Atom::Const(
            ColRef::new(t(0), 7),
            ojv_algebra::CmpOp::Eq,
            ojv_rel::Datum::Int(1),
        )),
        Expr::table(t(0)),
    );
    let v = verify_plan(&l, &bad, None).unwrap_err();
    assert_eq!(v.invariant, Invariant::PlanColRange);
}

#[test]
fn delta_leaf_of_wrong_table_is_rejected() {
    let l = layout();
    let plan = Expr::inner(eq(0, 0, 1, 1), Expr::Delta(t(0)), Expr::table(t(1)));
    // Verified as a maintenance plan for an update of table b.
    let v = verify_plan(&l, &plan, Some(t(1))).unwrap_err();
    assert_eq!(v.invariant, Invariant::PlanDeltaLeaf);
    // And as a plain view expression (no delta at all).
    let v = verify_plan(&l, &plan, None).unwrap_err();
    assert_eq!(v.invariant, Invariant::PlanDeltaLeaf);
    // For the right update it is fine.
    assert!(verify_plan(&l, &plan, Some(t(0))).is_ok());
}

#[test]
fn leaf_outside_layout_is_rejected() {
    let l = layout();
    let v = verify_plan(&l, &Expr::table(t(5)), None).unwrap_err();
    assert_eq!(v.invariant, Invariant::PlanTableRange);
}

#[test]
fn bushy_plan_fails_left_deep_check() {
    let bushy = Expr::inner(
        eq(0, 0, 2, 0),
        Expr::Delta(t(0)),
        Expr::inner(eq(2, 0, 3, 0), Expr::table(t(2)), Expr::table(t(3))),
    );
    let v = verify_left_deep(&bushy).unwrap_err();
    assert_eq!(v.invariant, Invariant::LeftDeepSpine);
}

// ---- maintenance-graph soundness -----------------------------------------

fn v1_graph() -> SubsumptionGraph {
    // Figure 1: terms TURS, TUR, TRS, TR, RS, R, S over R=0,S=1,T=2,U=3.
    SubsumptionGraph::new(vec![
        term(&[0, 1, 2, 3]),
        term(&[0, 2, 3]),
        term(&[0, 1, 2]),
        term(&[0, 2]),
        term(&[0, 1]),
        term(&[0]),
        term(&[1]),
    ])
}

#[test]
fn genuine_maintenance_graph_verifies_clean() {
    let g = v1_graph();
    let m = MaintenanceGraph::build(&g, t(2), &[]);
    assert!(verify_maintenance_graph(&g, &m, &[]).unwrap() > 0);
}

#[test]
fn dropped_direct_term_is_rejected() {
    let g = v1_graph();
    let mut m = MaintenanceGraph::build(&g, t(2), &[]);
    // Drop the top term (no indirect term lists it as a parent, so only the
    // re-derivation comparison can notice it went missing).
    m.direct.remove(0);
    let v = verify_maintenance_graph(&g, &m, &[]).unwrap_err();
    assert_eq!(v.invariant, Invariant::MaintClassify);
    assert_eq!(v.invariant.id(), "MAINT-CLASSIFY");
}

#[test]
fn term_classified_twice_is_rejected() {
    let g = v1_graph();
    let mut m = MaintenanceGraph::build(&g, t(2), &[]);
    let dup = m.direct[0];
    m.direct.push(dup);
    let v = verify_maintenance_graph(&g, &m, &[]).unwrap_err();
    assert_eq!(v.invariant, Invariant::MaintClassify);
    assert!(v.detail.contains("twice"), "{v}");
}

#[test]
fn fabricated_parent_edge_is_rejected() {
    let g = v1_graph();
    let mut m = MaintenanceGraph::build(&g, t(2), &[]);
    // Claim the top term (not a parent of any indirect term) as a pard.
    m.indirect[0].pard = vec![0];
    let v = verify_maintenance_graph(&g, &m, &[]).unwrap_err();
    assert_eq!(v.invariant, Invariant::MaintParents);
    assert_eq!(v.invariant.id(), "MAINT-PARENTS");
}

#[test]
fn indirect_term_sourcing_the_update_is_rejected() {
    let g = v1_graph();
    let mut m = MaintenanceGraph::build(&g, t(2), &[]);
    // Move a direct term (TUR, contains T; nobody's pard) into the
    // indirect list.
    let stolen = m.direct.remove(1);
    m.indirect
        .push(ojv_algebra::maintenance_graph::IndirectTerm {
            term: stolen,
            pard: vec![0],
            pari: vec![],
        });
    let v = verify_maintenance_graph(&g, &m, &[]).unwrap_err();
    assert_eq!(v.invariant, Invariant::MaintClassify);
}
