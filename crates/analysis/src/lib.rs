//! Static plan verification for the maintenance pipeline.
//!
//! The paper's correctness argument is a stack of structural invariants:
//! JDNF terms have unique source sets (§2.2), subsumption edges connect
//! only minimal supersets (§2.3), the maintenance graph classifies every
//! term exactly once (§3.1, §6.2), the left-deep conversion's rules 1/4/5
//! must pair every null-if λ with a cleanup δ (§4.1), and a from-view
//! secondary delta may only touch keys the view projects (§5.2). This crate
//! re-derives each of those properties from a compiled plan *without
//! executing it* and reports the first breach as a structured
//! [`PlanViolation`] carrying the operator path and a stable invariant id.
//!
//! `ojv-core` runs these passes unconditionally at plan-build time in debug
//! builds and behind `MaintenancePolicy::verify_plans` in release; EXPLAIN
//! appends a `verified: ok (N invariants)` footer.

#![forbid(unsafe_code)]

pub mod verify;
pub mod violation;

pub use verify::{
    verify_delta_arity, verify_jdnf, verify_layout, verify_left_deep, verify_maintenance_graph,
    verify_plan, verify_secondary_from_view, VerifyReport,
};
pub use violation::{Invariant, PlanViolation};
