//! Structured verification failures.

use std::fmt;

/// The statically checkable invariants of a maintenance plan, each with a
/// stable string id used in tests, EXPLAIN output, and DESIGN.md.
///
/// The ids are part of the crate's public contract: golden negative tests
/// assert them exactly, and DESIGN.md maps each to the paper section whose
/// proof obligation it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Slot offsets/lengths tile the wide row exactly (`width` = Σ len).
    LayoutStride,
    /// Every slot has a non-empty, in-range, non-nullable unique key.
    LayoutKey,
    /// Layout slots agree with the catalog's current table schemas — a
    /// widened row of table `T` has exactly `|schema(T)|` columns at the
    /// slot's offset.
    LayoutWiden,
    /// Delta batch arity matches the updated table's slot.
    DeltaArity,
    /// Every `Table`/`Delta`/`OldState` leaf names a table of the layout.
    PlanTableRange,
    /// `Delta`/`OldState` leaves reference exactly the updated table.
    PlanDeltaLeaf,
    /// Join operands draw from disjoint source sets.
    PlanJoinOverlap,
    /// Predicates only reference tables in scope at their operator.
    PlanPredScope,
    /// Predicate column indexes fall inside their table's slot.
    PlanColRange,
    /// JDNF terms have pairwise distinct source sets (Galindo-Legaria
    /// normal form).
    JdnfUniqueSources,
    /// Subsumption edges connect exactly the minimal proper supersets.
    SubsumeEdgeMinimal,
    /// The subsumption graph is acyclic.
    SubsumeAcyclic,
    /// A plan claimed left-deep has only leaf right operands on its spine.
    LeftDeepSpine,
    /// Every null-if (λ) is immediately wrapped by a cleanup (δ) — rules
    /// 1, 4 and 5 of the left-deep conversion.
    LeftDeepMissingDelta,
    /// A null-if's predicate and null set respect the rewrite's side
    /// conditions (`pred ⊆ null_tables ⊆ input sources`).
    LeftDeepNullIfScope,
    /// Every term is classified direct/indirect/unaffected exactly once,
    /// matching a re-derivation of the maintenance graph.
    MaintClassify,
    /// Indirect terms' `pard`/`pari` sets are genuine subsumption parents
    /// with the claimed classification.
    MaintParents,
    /// A from-view secondary delta only references keys (and null-test
    /// columns) the view actually projects.
    SecondaryKeyProjected,
}

impl Invariant {
    /// The stable string id.
    pub fn id(self) -> &'static str {
        match self {
            Invariant::LayoutStride => "LAYOUT-STRIDE",
            Invariant::LayoutKey => "LAYOUT-KEY",
            Invariant::LayoutWiden => "LAYOUT-WIDEN",
            Invariant::DeltaArity => "DELTA-ARITY",
            Invariant::PlanTableRange => "PLAN-TABLE-RANGE",
            Invariant::PlanDeltaLeaf => "PLAN-DELTA-LEAF",
            Invariant::PlanJoinOverlap => "PLAN-JOIN-OVERLAP",
            Invariant::PlanPredScope => "PLAN-PRED-SCOPE",
            Invariant::PlanColRange => "PLAN-COL-RANGE",
            Invariant::JdnfUniqueSources => "JDNF-UNIQUE-SOURCES",
            Invariant::SubsumeEdgeMinimal => "SUBSUME-EDGE-MINIMAL",
            Invariant::SubsumeAcyclic => "SUBSUME-ACYCLIC",
            Invariant::LeftDeepSpine => "LEFTDEEP-SPINE",
            Invariant::LeftDeepMissingDelta => "LEFTDEEP-MISSING-DELTA",
            Invariant::LeftDeepNullIfScope => "LEFTDEEP-NULLIF-SCOPE",
            Invariant::MaintClassify => "MAINT-CLASSIFY",
            Invariant::MaintParents => "MAINT-PARENTS",
            Invariant::SecondaryKeyProjected => "SECONDARY-KEY-PROJECTED",
        }
    }

    /// The paper section whose proof obligation the invariant encodes.
    pub fn paper_section(self) -> &'static str {
        match self {
            Invariant::LayoutStride
            | Invariant::LayoutKey
            | Invariant::LayoutWiden
            | Invariant::DeltaArity => "§2.1",
            Invariant::JdnfUniqueSources => "§2.2",
            Invariant::SubsumeEdgeMinimal | Invariant::SubsumeAcyclic => "§2.3",
            Invariant::MaintClassify | Invariant::MaintParents => "§3.1/§6.2",
            Invariant::PlanTableRange
            | Invariant::PlanDeltaLeaf
            | Invariant::PlanJoinOverlap
            | Invariant::PlanPredScope
            | Invariant::PlanColRange => "§4",
            Invariant::LeftDeepSpine
            | Invariant::LeftDeepMissingDelta
            | Invariant::LeftDeepNullIfScope => "§4.1",
            Invariant::SecondaryKeyProjected => "§5.2",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A structured verification failure: which invariant broke, where in the
/// plan, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanViolation {
    pub invariant: Invariant,
    /// Operator path from the plan root, e.g. `plan/δ/λ/LeftOuter[L]`.
    pub path: String,
    pub detail: String,
}

impl PlanViolation {
    pub fn new(invariant: Invariant, path: impl Into<String>, detail: impl Into<String>) -> Self {
        PlanViolation {
            invariant,
            path: path.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.invariant, self.path, self.detail)
    }
}

impl std::error::Error for PlanViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_distinct() {
        let all = [
            Invariant::LayoutStride,
            Invariant::LayoutKey,
            Invariant::LayoutWiden,
            Invariant::DeltaArity,
            Invariant::PlanTableRange,
            Invariant::PlanDeltaLeaf,
            Invariant::PlanJoinOverlap,
            Invariant::PlanPredScope,
            Invariant::PlanColRange,
            Invariant::JdnfUniqueSources,
            Invariant::SubsumeEdgeMinimal,
            Invariant::SubsumeAcyclic,
            Invariant::LeftDeepSpine,
            Invariant::LeftDeepMissingDelta,
            Invariant::LeftDeepNullIfScope,
            Invariant::MaintClassify,
            Invariant::MaintParents,
            Invariant::SecondaryKeyProjected,
        ];
        let mut ids: Vec<&str> = all.iter().map(|i| i.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate invariant id");
        for inv in all {
            assert!(!inv.paper_section().is_empty());
        }
    }

    #[test]
    fn violation_display() {
        let v = PlanViolation::new(Invariant::LeftDeepMissingDelta, "plan/λ", "no δ above λ");
        assert_eq!(
            v.to_string(),
            "[LEFTDEEP-MISSING-DELTA] at plan/λ: no δ above λ"
        );
    }
}
