//! The verification passes.
//!
//! Each pass takes the artifacts a plan is built from — the wide-row
//! [`ViewLayout`], the normalized term set in its [`SubsumptionGraph`], the
//! [`MaintenanceGraph`] classification, and the delta [`Expr`] tree — and
//! re-derives the invariant the paper's construction is supposed to
//! guarantee, without executing anything. On success a pass returns the
//! number of individual checks it performed (summed into EXPLAIN's
//! `verified: ok (N invariants)` footer); on failure it returns the first
//! [`PlanViolation`] with the operator path that broke.

use ojv_algebra::left_deep::is_left_deep;
use ojv_algebra::{
    Expr, FkEdge, JoinKind, MaintenanceGraph, Pred, SubsumptionGraph, TableId, TableSet, Term,
};
use ojv_exec::ViewLayout;
use ojv_storage::Catalog;

use crate::violation::{Invariant, PlanViolation};

/// Outcome of running a set of passes: how many individual checks passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyReport {
    pub checks: usize,
}

impl VerifyReport {
    pub fn add(&mut self, checks: usize) {
        self.checks += checks;
    }
}

fn fail(
    invariant: Invariant,
    path: &[String],
    detail: impl Into<String>,
) -> Result<(), PlanViolation> {
    Err(PlanViolation::new(invariant, path.join("/"), detail.into()))
}

/// Verify the wide-row layout itself, and (when a catalog is supplied) its
/// agreement with the catalog's current table schemas.
///
/// The catalog cross-check is what catches *stride mismatch after widening*:
/// a layout built against one catalog and used against another (e.g. after a
/// table gained a column) widens rows at the wrong offsets.
pub fn verify_layout(
    layout: &ViewLayout,
    catalog: Option<&Catalog>,
) -> Result<usize, PlanViolation> {
    let mut checks = 0usize;
    let mut offset = 0usize;
    for slot in layout.slots() {
        let path = vec![format!("layout/{}", slot.name)];
        checks += 1;
        if slot.offset != offset {
            fail(
                Invariant::LayoutStride,
                &path,
                format!(
                    "slot offset {} but previous slots end at {offset}",
                    slot.offset
                ),
            )?;
        }
        checks += 1;
        if slot.len != slot.schema.len() {
            fail(
                Invariant::LayoutStride,
                &path,
                format!(
                    "slot len {} vs schema arity {}",
                    slot.len,
                    slot.schema.len()
                ),
            )?;
        }
        checks += 1;
        if slot.key_cols.is_empty() {
            fail(
                Invariant::LayoutKey,
                &path,
                "slot has no key columns; null(T) is undecidable",
            )?;
        }
        for &k in &slot.key_cols {
            checks += 1;
            if k < slot.offset || k >= slot.offset + slot.len {
                fail(
                    Invariant::LayoutKey,
                    &path,
                    format!(
                        "key column {k} outside slot range [{}, {})",
                        slot.offset,
                        slot.offset + slot.len
                    ),
                )?;
            } else {
                checks += 1;
                if slot.schema.columns()[k - slot.offset].nullable {
                    fail(
                        Invariant::LayoutKey,
                        &path,
                        format!("key column {k} is nullable; null(T) would misfire"),
                    )?;
                }
            }
        }
        offset += slot.len;
    }
    let root = vec!["layout".to_string()];
    checks += 1;
    if layout.width() != offset {
        fail(
            Invariant::LayoutStride,
            &root,
            format!("width {} but slots tile {offset} columns", layout.width()),
        )?;
    }
    checks += 1;
    if layout.wide_schema().len() != layout.width() {
        fail(
            Invariant::LayoutStride,
            &root,
            format!(
                "wide schema arity {} vs width {}",
                layout.wide_schema().len(),
                layout.width()
            ),
        )?;
    }
    if let Some(catalog) = catalog {
        for slot in layout.slots() {
            let path = vec![format!("layout/{}", slot.name)];
            checks += 1;
            let table = match catalog.table(&slot.name) {
                Ok(t) => t,
                Err(_) => {
                    fail(
                        Invariant::LayoutWiden,
                        &path,
                        "table no longer exists in the catalog",
                    )?;
                    continue;
                }
            };
            checks += 1;
            if table.schema().len() != slot.len {
                fail(
                    Invariant::LayoutWiden,
                    &path,
                    format!(
                        "catalog arity {} vs slot len {} — widened rows would land at wrong strides",
                        table.schema().len(),
                        slot.len
                    ),
                )?;
            }
            checks += 1;
            let expect: Vec<usize> = table.key_cols().iter().map(|&c| c + slot.offset).collect();
            if expect != slot.key_cols {
                fail(
                    Invariant::LayoutWiden,
                    &path,
                    format!(
                        "catalog key columns {expect:?} vs slot key columns {:?}",
                        slot.key_cols
                    ),
                )?;
            }
        }
    }
    Ok(checks)
}

/// Verify that a delta batch's arity matches the updated table's slot, so
/// widening lands every column at the right stride.
pub fn verify_delta_arity(
    layout: &ViewLayout,
    updated: TableId,
    arity: usize,
) -> Result<usize, PlanViolation> {
    let mut checks = 1usize;
    if updated.index() >= layout.table_count() {
        return Err(PlanViolation::new(
            Invariant::PlanTableRange,
            format!("Δ{updated}"),
            format!(
                "updated table outside layout of {} tables",
                layout.table_count()
            ),
        ));
    }
    let slot = layout.slot(updated);
    checks += 1;
    if arity != slot.len {
        return Err(PlanViolation::new(
            Invariant::DeltaArity,
            format!("Δ{}", slot.name),
            format!("delta rows have {arity} columns vs slot arity {}", slot.len),
        ));
    }
    Ok(checks)
}

/// Verify a delta expression tree against the layout: leaf table ranges,
/// delta-leaf identity, join source disjointness, predicate scope and column
/// ranges, and the λ/δ side conditions of the left-deep rewrite rules.
///
/// `delta` is the updated table when verifying a maintenance plan, or `None`
/// for a plain view expression (which must not contain Δ leaves).
pub fn verify_plan(
    layout: &ViewLayout,
    plan: &Expr,
    delta: Option<TableId>,
) -> Result<usize, PlanViolation> {
    let mut checks = 0usize;
    let mut path = vec!["plan".to_string()];
    walk(layout, plan, delta, false, &mut path, &mut checks)?;
    Ok(checks)
}

/// Verify that a plan claimed left-deep really is: every join's right
/// operand along the spine is a leaf.
pub fn verify_left_deep(plan: &Expr) -> Result<usize, PlanViolation> {
    if !is_left_deep(plan) {
        return Err(PlanViolation::new(
            Invariant::LeftDeepSpine,
            "plan",
            "a spine join has a non-leaf right operand",
        ));
    }
    Ok(1)
}

fn table_name(layout: &ViewLayout, t: TableId) -> String {
    if t.index() < layout.table_count() {
        layout.slot(t).name.clone()
    } else {
        t.to_string()
    }
}

fn check_leaf(
    layout: &ViewLayout,
    t: TableId,
    is_delta: bool,
    delta: Option<TableId>,
    path: &[String],
    checks: &mut usize,
) -> Result<(), PlanViolation> {
    *checks += 1;
    if t.index() >= layout.table_count() {
        fail(
            Invariant::PlanTableRange,
            path,
            format!(
                "leaf references {t} but the layout has {} tables",
                layout.table_count()
            ),
        )?;
    }
    if is_delta {
        *checks += 1;
        match delta {
            Some(u) if u == t => {}
            Some(u) => fail(
                Invariant::PlanDeltaLeaf,
                path,
                format!(
                    "Δ/old-state leaf over {} but the maintained update targets {}",
                    table_name(layout, t),
                    table_name(layout, u)
                ),
            )?,
            None => fail(
                Invariant::PlanDeltaLeaf,
                path,
                format!(
                    "Δ/old-state leaf over {} in a plan with no delta input",
                    table_name(layout, t)
                ),
            )?,
        }
    }
    Ok(())
}

fn check_pred(
    layout: &ViewLayout,
    pred: &Pred,
    scope: TableSet,
    path: &[String],
    checks: &mut usize,
) -> Result<(), PlanViolation> {
    for atom in pred.atoms() {
        for col in atom.col_refs() {
            *checks += 1;
            if !scope.contains(col.table) {
                fail(
                    Invariant::PlanPredScope,
                    path,
                    format!(
                        "predicate atom `{atom}` references {} outside scope {scope}",
                        col.table
                    ),
                )?;
            }
            *checks += 1;
            if col.table.index() >= layout.table_count() {
                fail(
                    Invariant::PlanColRange,
                    path,
                    format!(
                        "predicate atom `{atom}` references unknown table {}",
                        col.table
                    ),
                )?;
            } else {
                let slot = layout.slot(col.table);
                *checks += 1;
                if col.col >= slot.len {
                    fail(
                        Invariant::PlanColRange,
                        path,
                        format!(
                            "predicate atom `{atom}` references {}.c{} but the slot has {} columns",
                            slot.name, col.col, slot.len
                        ),
                    )?;
                }
            }
        }
    }
    Ok(())
}

fn walk(
    layout: &ViewLayout,
    e: &Expr,
    delta: Option<TableId>,
    under_cleanup: bool,
    path: &mut Vec<String>,
    checks: &mut usize,
) -> Result<(), PlanViolation> {
    match e {
        Expr::Table(t) => check_leaf(layout, *t, false, delta, path, checks),
        Expr::Delta(t) | Expr::OldState(t) => check_leaf(layout, *t, true, delta, path, checks),
        Expr::Empty => Ok(()),
        Expr::Select(pred, input) => {
            check_pred(layout, pred, input.sources(), path, checks)?;
            path.push("σ".to_string());
            walk(layout, input, delta, false, path, checks)?;
            path.pop();
            Ok(())
        }
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            let ls = left.sources();
            let rs = right.sources();
            *checks += 1;
            if !ls.intersect(rs).is_empty() {
                fail(
                    Invariant::PlanJoinOverlap,
                    path,
                    format!("join operands share sources {}", ls.intersect(rs)),
                )?;
            }
            // Predicate scope for semijoins still spans both operands even
            // though only the left side's columns survive.
            check_pred(layout, pred, ls.union(rs), path, checks)?;
            let label = match kind {
                JoinKind::Inner => "⋈",
                JoinKind::LeftOuter => "lo",
                JoinKind::RightOuter => "ro",
                JoinKind::FullOuter => "fo",
                JoinKind::LeftSemi => "⋉",
                JoinKind::LeftAnti => "▷",
            };
            path.push(format!("{label}[L]"));
            walk(layout, left, delta, false, path, checks)?;
            path.pop();
            path.push(format!("{label}[R]"));
            walk(layout, right, delta, false, path, checks)?;
            path.pop();
            Ok(())
        }
        Expr::NullIf {
            null_tables,
            pred,
            input,
        } => {
            *checks += 1;
            if !under_cleanup {
                fail(
                    Invariant::LeftDeepMissingDelta,
                    path,
                    "null-if (λ) without an enclosing cleanup (δ) — rules 1/4/5 \
                     require δ to remove the duplicates and subsumed tuples λ creates",
                )?;
            }
            *checks += 1;
            if null_tables.is_empty() {
                fail(Invariant::LeftDeepNullIfScope, path, "empty null set")?;
            }
            *checks += 1;
            if !null_tables.is_subset_of(input.sources()) {
                fail(
                    Invariant::LeftDeepNullIfScope,
                    path,
                    format!(
                        "null set {null_tables} not produced by the input (sources {})",
                        input.sources()
                    ),
                )?;
            }
            *checks += 1;
            if !pred.tables().is_subset_of(*null_tables) {
                fail(
                    Invariant::LeftDeepNullIfScope,
                    path,
                    format!(
                        "λ predicate references {} outside the null set {null_tables}",
                        pred.tables()
                    ),
                )?;
            }
            check_pred(layout, pred, input.sources(), path, checks)?;
            path.push("λ".to_string());
            walk(layout, input, delta, false, path, checks)?;
            path.pop();
            Ok(())
        }
        Expr::CleanDup(input) => {
            path.push("δ".to_string());
            walk(layout, input, delta, true, path, checks)?;
            path.pop();
            Ok(())
        }
    }
}

/// Verify JDNF well-formedness of a subsumption graph: unique term source
/// sets, edges exactly to minimal proper supersets, and acyclicity.
pub fn verify_jdnf(graph: &SubsumptionGraph) -> Result<usize, PlanViolation> {
    let mut checks = 0usize;
    let terms = graph.terms();
    let n = terms.len();
    for i in 0..n {
        for j in (i + 1)..n {
            checks += 1;
            if terms[i].tables == terms[j].tables {
                return Err(PlanViolation::new(
                    Invariant::JdnfUniqueSources,
                    format!("jdnf/term{i}"),
                    format!(
                        "terms {i} and {j} share the source set {} — not in normal form",
                        terms[i].tables
                    ),
                ));
            }
        }
    }
    for i in 0..n {
        let mut expect: Vec<usize> = (0..n)
            .filter(|&p| {
                p != i
                    && terms[i].tables.is_proper_subset_of(terms[p].tables)
                    && !(0..n).any(|k| {
                        k != i
                            && k != p
                            && terms[i].tables.is_proper_subset_of(terms[k].tables)
                            && terms[k].tables.is_proper_subset_of(terms[p].tables)
                    })
            })
            .collect();
        expect.sort_unstable();
        let mut actual = graph.parents(i).to_vec();
        actual.sort_unstable();
        checks += 1;
        if actual != expect {
            return Err(PlanViolation::new(
                Invariant::SubsumeEdgeMinimal,
                format!("subsumption/term{i}"),
                format!("parents {actual:?} but the minimal supersets are {expect:?}"),
            ));
        }
        // Children must be the exact inverse relation.
        for &c in graph.children(i) {
            checks += 1;
            if c >= n || !graph.parents(c).contains(&i) {
                return Err(PlanViolation::new(
                    Invariant::SubsumeEdgeMinimal,
                    format!("subsumption/term{i}"),
                    format!("child edge to term {c} has no inverse parent edge"),
                ));
            }
        }
    }
    // Acyclicity (implied by edge minimality over proper subsets, but checked
    // directly so a broken edge pass still can't smuggle in a cycle).
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < graph.parents(node).len() {
                let p = graph.parents(node)[*next];
                *next += 1;
                checks += 1;
                if state[p] == 1 {
                    return Err(PlanViolation::new(
                        Invariant::SubsumeAcyclic,
                        format!("subsumption/term{node}"),
                        format!("cycle through parent edge {node} -> {p}"),
                    ));
                }
                if state[p] == 0 {
                    state[p] = 1;
                    stack.push((p, 0));
                }
            } else {
                state[node] = 2;
                stack.pop();
            }
        }
    }
    Ok(checks)
}

/// Verify a maintenance graph against the subsumption graph it classifies:
/// structural soundness of the direct/indirect split, parent-edge claims,
/// and agreement with a full re-derivation under the same foreign keys.
pub fn verify_maintenance_graph(
    graph: &SubsumptionGraph,
    m: &MaintenanceGraph,
    fks: &[FkEdge],
) -> Result<usize, PlanViolation> {
    let mut checks = 0usize;
    let n = graph.len();
    let mut classified = vec![false; n];
    for &d in &m.direct {
        let path = vec![format!("mgraph/direct/term{d}")];
        checks += 1;
        if d >= n {
            fail(Invariant::MaintClassify, &path, "term index out of range")?;
        }
        checks += 1;
        if classified[d] {
            fail(Invariant::MaintClassify, &path, "term classified twice")?;
        }
        classified[d] = true;
        checks += 1;
        if !graph.term(d).tables.contains(m.updated) {
            fail(
                Invariant::MaintClassify,
                &path,
                format!("classified direct but does not source {}", m.updated),
            )?;
        }
    }
    let direct = m.direct.clone();
    for ind in &m.indirect {
        let path = vec![format!("mgraph/indirect/term{}", ind.term)];
        checks += 1;
        if ind.term >= n {
            fail(Invariant::MaintClassify, &path, "term index out of range")?;
        }
        checks += 1;
        if classified[ind.term] {
            fail(Invariant::MaintClassify, &path, "term classified twice")?;
        }
        classified[ind.term] = true;
        checks += 1;
        if graph.term(ind.term).tables.contains(m.updated) {
            fail(
                Invariant::MaintClassify,
                &path,
                format!("classified indirect but sources {} directly", m.updated),
            )?;
        }
        checks += 1;
        if ind.pard.is_empty() {
            fail(
                Invariant::MaintParents,
                &path,
                "indirect term with no directly affected parent",
            )?;
        }
        for &p in &ind.pard {
            checks += 1;
            if !direct.contains(&p) {
                fail(
                    Invariant::MaintParents,
                    &path,
                    format!("pard entry {p} is not a directly affected term"),
                )?;
            }
            checks += 1;
            if !graph.parents(ind.term).contains(&p) {
                fail(
                    Invariant::MaintParents,
                    &path,
                    format!("pard entry {p} is not a subsumption parent"),
                )?;
            }
        }
        for &p in &ind.pari {
            checks += 1;
            if direct.contains(&p) || graph.term(p).tables.contains(m.updated) {
                fail(
                    Invariant::MaintParents,
                    &path,
                    format!("pari entry {p} is not indirectly affected"),
                )?;
            }
            checks += 1;
            if !graph.parents(ind.term).contains(&p) {
                fail(
                    Invariant::MaintParents,
                    &path,
                    format!("pari entry {p} is not a subsumption parent"),
                )?;
            }
        }
    }
    // Re-derive the whole classification and require exact agreement — this
    // is what catches a term silently dropped from (or added to) the graph.
    let rebuilt = MaintenanceGraph::build(graph, m.updated, fks);
    let mut got: Vec<usize> = m.direct.clone();
    got.sort_unstable();
    let mut want = rebuilt.direct.clone();
    want.sort_unstable();
    checks += 1;
    if got != want {
        return Err(PlanViolation::new(
            Invariant::MaintClassify,
            "mgraph/direct",
            format!("direct terms {got:?} but re-derivation yields {want:?}"),
        ));
    }
    let key = |ind: &ojv_algebra::maintenance_graph::IndirectTerm| {
        let mut pard = ind.pard.clone();
        pard.sort_unstable();
        let mut pari = ind.pari.clone();
        pari.sort_unstable();
        (ind.term, pard, pari)
    };
    let mut got: Vec<_> = m.indirect.iter().map(key).collect();
    got.sort();
    let mut want: Vec<_> = rebuilt.indirect.iter().map(key).collect();
    want.sort();
    checks += 1;
    if got != want {
        return Err(PlanViolation::new(
            Invariant::MaintClassify,
            "mgraph/indirect",
            format!("indirect classification {got:?} but re-derivation yields {want:?}"),
        ));
    }
    Ok(checks)
}

/// Verify that a from-view secondary delta over `term` only relies on
/// columns the view projects: the term's key columns (to probe the view's
/// key-count index) and, per view table, at least one non-nullable column
/// (the null-pattern predicates `null(X)`/`¬null(X)` span *all* tables, not
/// just the term's). Mirrors the paper's §5.2 availability condition.
pub fn verify_secondary_from_view(
    layout: &ViewLayout,
    term: &Term,
    projection: &[usize],
) -> Result<usize, PlanViolation> {
    let mut checks = 0usize;
    for k in layout.term_key_cols(term.tables) {
        checks += 1;
        if !projection.contains(&k) {
            return Err(PlanViolation::new(
                Invariant::SecondaryKeyProjected,
                format!("secondary/{}", term.tables),
                format!("from-view plan probes key column {k} but the view projects it away"),
            ));
        }
    }
    for slot in layout.slots() {
        checks += 1;
        let has_null_test = projection.iter().any(|&g| {
            g >= slot.offset
                && g < slot.offset + slot.len
                && !slot.schema.columns()[g - slot.offset].nullable
        });
        if !has_null_test {
            return Err(PlanViolation::new(
                Invariant::SecondaryKeyProjected,
                format!("secondary/{}", term.tables),
                format!(
                    "view projects no non-nullable column of {} — null({}) is undecidable on view rows",
                    slot.name, slot.name
                ),
            ));
        }
    }
    Ok(checks)
}
