//! Property-based tests for the algebraic laws of §2.1: subsumption is a
//! strict partial order, `↓` is idempotent, and minimum union is commutative
//! and associative (the paper states the latter explicitly).

use ojv_testkit::{property, strategy, vec_of, Rng, Strategy};

use ojv_rel::{
    minimum_union, outer_union, remove_subsumed, subsumes, Column, DataType, Datum, Relation,
    Schema, SchemaRef,
};

fn schema(width: usize) -> SchemaRef {
    Schema::shared(
        (0..width)
            .map(|i| Column::new("t", &format!("c{i}"), DataType::Int, true))
            .collect(),
    )
    .expect("distinct columns")
}

/// Rows over a tiny domain with plenty of nulls, to make subsumption likely.
fn row_strategy(width: usize) -> impl Strategy<Value = Vec<Datum>> {
    vec_of(
        strategy(
            |rng: &mut Rng| {
                if rng.gen_bool(0.5) {
                    Datum::Null
                } else {
                    Datum::Int(rng.gen_range(0i64..3))
                }
            },
            |d: &Datum| match d {
                Datum::Int(n) if *n > 0 => vec![Datum::Null, Datum::Int(n - 1)],
                Datum::Int(_) => vec![Datum::Null],
                _ => Vec::new(),
            },
        ),
        width..width + 1,
    )
}

fn rel_strategy(width: usize) -> impl Strategy<Value = Vec<Vec<Datum>>> {
    vec_of(row_strategy(width), 0..8)
}

property! {
    #[cases = 256]
    fn subsumption_is_irreflexive_and_asymmetric(a in row_strategy(4), b in row_strategy(4)) {
        assert!(!subsumes(&a, &a));
        if subsumes(&a, &b) {
            assert!(!subsumes(&b, &a));
        }
    }

    #[cases = 256]
    fn subsumption_is_transitive(a in row_strategy(3), b in row_strategy(3), c in row_strategy(3)) {
        if subsumes(&a, &b) && subsumes(&b, &c) {
            assert!(subsumes(&a, &c));
        }
    }

    #[cases = 256]
    fn removal_of_subsumed_is_idempotent(rows in rel_strategy(4)) {
        let r = Relation::new(schema(4), rows);
        let once = remove_subsumed(&r);
        let twice = remove_subsumed(&once);
        assert!(once.bag_eq(&twice));
    }

    #[cases = 256]
    fn removal_output_has_no_subsumed_rows(rows in rel_strategy(4)) {
        let r = Relation::new(schema(4), rows);
        let out = remove_subsumed(&r);
        for (i, a) in out.rows().iter().enumerate() {
            for (j, b) in out.rows().iter().enumerate() {
                if i != j {
                    assert!(!subsumes(a, b), "row {j} still subsumed by {i}");
                }
            }
        }
    }

    /// `⊕` is commutative (paper §2.1: "minimum union is both commutative
    /// and associative").
    #[cases = 256]
    fn minimum_union_commutative(a in rel_strategy(4), b in rel_strategy(4)) {
        let s = schema(4);
        let ra = Relation::new(s.clone(), a);
        let rb = Relation::new(s, b);
        let ab = minimum_union(&ra, &rb).unwrap();
        let ba = minimum_union(&rb, &ra).unwrap();
        assert!(ab.bag_eq(&ba));
    }

    /// `⊕` is associative.
    #[cases = 256]
    fn minimum_union_associative(
        a in rel_strategy(3),
        b in rel_strategy(3),
        c in rel_strategy(3),
    ) {
        let s = schema(3);
        let ra = Relation::new(s.clone(), a);
        let rb = Relation::new(s.clone(), b);
        let rc = Relation::new(s, c);
        let left = minimum_union(&minimum_union(&ra, &rb).unwrap(), &rc).unwrap();
        let right = minimum_union(&ra, &minimum_union(&rb, &rc).unwrap()).unwrap();
        assert!(left.bag_eq(&right));
    }

    /// `T1 ⊕ T2 = (T1 ⊎ T2)↓` — the definition, checked against the
    /// composed implementation.
    #[cases = 256]
    fn minimum_union_is_outer_union_then_removal(a in rel_strategy(4), b in rel_strategy(4)) {
        let s = schema(4);
        let ra = Relation::new(s.clone(), a);
        let rb = Relation::new(s, b);
        let direct = minimum_union(&ra, &rb).unwrap();
        let composed = remove_subsumed(&outer_union(&ra, &rb).unwrap());
        assert!(direct.bag_eq(&composed));
    }

    /// The grouped (bitmask) implementation of `↓` agrees with the naive
    /// quadratic definition.
    #[cases = 256]
    fn removal_matches_naive_definition(rows in rel_strategy(5)) {
        let r = Relation::new(schema(5), rows.clone());
        let fast = remove_subsumed(&r);
        let naive: Vec<Vec<Datum>> = rows
            .iter()
            .filter(|a| !rows.iter().any(|b| subsumes(b, a)))
            .cloned()
            .collect();
        let naive_rel = Relation::new(schema(5), naive);
        assert!(fast.bag_eq(&naive_rel));
    }

    /// Datum total order: antisymmetric and transitive over a mixed domain,
    /// and hashing agrees with equality.
    #[cases = 256]
    fn datum_order_and_hash_consistent(a in row_strategy(1), b in row_strategy(1)) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let (x, y) = (&a[0], &b[0]);
        if x == y {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            x.hash(&mut ha);
            y.hash(&mut hb);
            assert_eq!(ha.finish(), hb.finish());
            assert_eq!(x.cmp(y), std::cmp::Ordering::Equal);
        }
        assert_eq!(x.cmp(y), y.cmp(x).reverse());
    }
}
