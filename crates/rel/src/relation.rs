//! Materialized relations (bags of rows over a schema).

use std::fmt;

use crate::row::{key_of, Row};
use crate::schema::SchemaRef;

/// A materialized bag of rows.
///
/// The execution layer materializes every operator's output as a `Relation`;
/// deltas (`ΔT`, `ΔV^D`, `ΔV^I`) are plain relations too.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: SchemaRef,
    rows: Vec<Row>,
}

impl Relation {
    pub fn new(schema: SchemaRef, rows: Vec<Row>) -> Self {
        Relation { schema, rows }
    }

    pub fn empty(schema: SchemaRef) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn push(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.len());
        self.rows.push(row);
    }

    /// Project onto `cols` (by index), producing a relation over `schema`.
    pub fn project(&self, cols: &[usize], schema: SchemaRef) -> Relation {
        let rows = self.rows.iter().map(|r| key_of(r, cols)).collect();
        Relation::new(schema, rows)
    }

    /// Sort rows by the total datum order — handy for order-insensitive
    /// equality in tests.
    pub fn sorted(mut self) -> Relation {
        self.rows.sort();
        self
    }

    /// Order-insensitive bag equality with another relation.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a: Vec<&Row> = self.rows.iter().collect();
        let mut b: Vec<&Row> = other.rows.iter().collect();
        a.sort();
        b.sort();
        a == b
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            writeln!(f, "{}", crate::row::row_display(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::{DataType, Datum};
    use crate::schema::{Column, Schema};

    fn schema2() -> SchemaRef {
        Schema::shared(vec![
            Column::new("t", "a", DataType::Int, false),
            Column::new("t", "b", DataType::Int, true),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_len() {
        let mut r = Relation::empty(schema2());
        assert!(r.is_empty());
        r.push(vec![Datum::Int(1), Datum::Int(2)]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn bag_eq_ignores_order() {
        let s = schema2();
        let a = Relation::new(
            s.clone(),
            vec![
                vec![Datum::Int(1), Datum::Int(2)],
                vec![Datum::Int(3), Datum::Null],
            ],
        );
        let b = Relation::new(
            s.clone(),
            vec![
                vec![Datum::Int(3), Datum::Null],
                vec![Datum::Int(1), Datum::Int(2)],
            ],
        );
        assert!(a.bag_eq(&b));
        let c = Relation::new(s, vec![vec![Datum::Int(1), Datum::Int(2)]]);
        assert!(!a.bag_eq(&c));
    }

    #[test]
    fn bag_eq_respects_multiplicity() {
        let s = schema2();
        let row = vec![Datum::Int(1), Datum::Int(2)];
        let a = Relation::new(s.clone(), vec![row.clone(), row.clone()]);
        let b = Relation::new(s, vec![row]);
        assert!(!a.bag_eq(&b));
    }

    #[test]
    fn project_extracts_columns() {
        let s = schema2();
        let single = Schema::shared(vec![Column::new("t", "b", DataType::Int, true)]).unwrap();
        let r = Relation::new(s, vec![vec![Datum::Int(1), Datum::Int(9)]]);
        let p = r.project(&[1], single);
        assert_eq!(p.rows()[0], vec![Datum::Int(9)]);
    }
}
