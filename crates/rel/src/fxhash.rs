//! A fast, deterministic, in-repo hasher for join keys and index maps.
//!
//! Every hash structure on the delta hot path — join build tables, the
//! unique/secondary indexes of base tables, the view store's key index —
//! hashes short `Datum` keys. `std`'s default SipHash is DoS-resistant but
//! costs tens of cycles per write; for the maintenance workload the hash
//! table keys are never attacker-controlled (they come from the catalog),
//! so we trade that resistance for speed with an FxHash-style
//! multiply-rotate mix (the scheme rustc itself uses for its interner
//! tables). Zero dependencies, and — unlike `RandomState` — **seeded by a
//! constant**, so hash values, partition assignments, and therefore every
//! hash-partitioned parallel operator are reproducible across runs, threads,
//! and machines.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from FxHash (derived from the golden ratio,
/// `2^64 / φ ≈ 0x9e3779b97f4a7c15`, with low bits tweaked for odd parity —
/// the constant used by Firefox and rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Constant seed folded into every hasher so the empty hash is not 0 and
/// streams of zero bytes still diffuse.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// FxHash-style streaming hasher: `state = (rotl(state, 5) ^ word) * K`.
#[derive(Debug, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Default for FxHasher {
    #[inline]
    fn default() -> Self {
        FxHasher { state: SEED }
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiplicative mixing only diffuses upward: bit k of a product
        // depends on bits 0..k of the operands, so the state's low bits carry
        // little entropy — and `std`'s hashbrown derives the bucket index
        // from the hash's *low* bits. Worse, `Datum` hashes integer keys
        // through their f64 bit pattern, whose low mantissa bits are all
        // zero for small integers. Fold the high bits down and re-multiply
        // so the bucket index sees the well-mixed half; without this, a
        // table of sequential integer keys collapses into a few buckets and
        // inserts go quadratic.
        let s = self.state;
        (s ^ (s >> 32)).wrapping_mul(K)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" + "c" != "a" + "bc".
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — deterministic (no per-map random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` over the fast deterministic hasher. Construct with
/// `FxHashMap::default()` or [`fx_map_with_capacity`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` over the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// [`FxHashMap`] with pre-allocated capacity (the custom hasher disables
/// `HashMap::with_capacity`).
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// [`FxHashSet`] with pre-allocated capacity.
pub fn fx_set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Hash one `Hash` value to a `u64` with the fast hasher — the single-shot
/// form used for hash-then-verify probe tables.
#[inline]
pub fn fx_hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    #[test]
    fn deterministic_across_hashers() {
        let a = fx_hash_one(&[Datum::Int(7), Datum::str("x")][..]);
        let b = fx_hash_one(&[Datum::Int(7), Datum::str("x")][..]);
        assert_eq!(a, b);
        assert_ne!(a, fx_hash_one(&[Datum::Int(8), Datum::str("x")][..]));
    }

    #[test]
    fn int_and_float_keys_hash_alike() {
        // `Datum`'s Hash impl routes equal int/float values through the same
        // bits; the hasher must preserve that.
        assert_eq!(fx_hash_one(&Datum::Int(7)), fx_hash_one(&Datum::Float(7.0)));
    }

    #[test]
    fn byte_stream_tail_is_length_sensitive() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FxHasher::default();
        b.write(b"a");
        b.write(b"bc");
        // Not required by the Hasher contract, but the tail-length fold
        // keeps short string keys from trivially colliding.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<Vec<Datum>, usize> = fx_map_with_capacity(4);
        m.insert(vec![Datum::Int(1)], 10);
        // Borrowed-slice probe: no owned key materialized.
        assert_eq!(m.get(&[Datum::Int(1)][..]), Some(&10));
        let mut s: FxHashSet<i64> = fx_set_with_capacity(2);
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn empty_hash_is_not_zero() {
        assert_ne!(FxHasher::default().finish(), 0);
    }
}
