//! Binary encoding for [`Datum`] values and rows.
//!
//! The durable maintenance log (`ojv-durability` + `ojv-core`) persists
//! update batches and view snapshots; this module is the value layer of
//! that format. Design rules:
//!
//! * **Self-describing**: every datum carries a one-byte tag, so decode
//!   needs no schema. Catalog-level framing (tables, updates) lives in
//!   `ojv-storage`'s codec and supplies the context this layer does not.
//! * **Bit-exact floats**: `f64` round-trips through `to_bits`/`from_bits`,
//!   preserving `-0.0`, NaN payloads, and integral-valued floats — the same
//!   bit patterns PR 2's hasher had to treat carefully. Recovered state
//!   must be *bit*-identical to the pre-crash state, not merely `==`.
//! * **Little-endian, length-prefixed**: matches the WAL framing; string
//!   lengths are `u32`.
//!
//! Decoding is total: every failure is a [`RelError::Codec`], never a
//! panic, because recovery feeds these functions CRC-validated but
//! adversarially truncated bytes in the fault-injection tests.

use std::sync::Arc;

use crate::datum::Datum;
use crate::error::RelError;
use crate::row::Row;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_DATE: u8 = 6;

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
///
/// # Errors
/// Fails if the string is longer than `u32::MAX` bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), RelError> {
    let len = u32::try_from(s.len()).map_err(|_| RelError::Codec {
        detail: format!("string of {} bytes exceeds u32 framing", s.len()),
    })?;
    put_u32(buf, len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Append one datum (tag + value bytes).
pub fn put_datum(buf: &mut Vec<u8>, d: &Datum) -> Result<(), RelError> {
    match d {
        Datum::Null => buf.push(TAG_NULL),
        Datum::Bool(false) => buf.push(TAG_BOOL_FALSE),
        Datum::Bool(true) => buf.push(TAG_BOOL_TRUE),
        Datum::Int(v) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Datum::Float(v) => {
            buf.push(TAG_FLOAT);
            // to_bits preserves -0.0 and every NaN payload.
            put_u64(buf, v.to_bits());
        }
        Datum::Str(s) => {
            buf.push(TAG_STR);
            put_str(buf, s)?;
        }
        Datum::Date(v) => {
            buf.push(TAG_DATE);
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(())
}

/// Append a row as `u32` arity followed by each datum.
pub fn put_row(buf: &mut Vec<u8>, row: &[Datum]) -> Result<(), RelError> {
    let len = u32::try_from(row.len()).map_err(|_| RelError::Codec {
        detail: format!("row of {} columns exceeds u32 framing", row.len()),
    })?;
    put_u32(buf, len);
    for d in row {
        put_datum(buf, d)?;
    }
    Ok(())
}

/// Sequential reader over encoded bytes with total (never-panicking)
/// accessors.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset, for error reporting.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn short(&self, what: &str, need: usize) -> RelError {
        RelError::Codec {
            detail: format!(
                "short read at offset {}: need {need} bytes for {what}, have {}",
                self.pos,
                self.remaining()
            ),
        }
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], RelError> {
        if self.remaining() < n {
            return Err(self.short(what, n));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, RelError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, RelError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.bytes(4, what)?);
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, RelError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.bytes(8, what)?);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, what: &str) -> Result<i64, RelError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.bytes(8, what)?);
        Ok(i64::from_le_bytes(b))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self, what: &str) -> Result<i32, RelError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.bytes(4, what)?);
        Ok(i32::from_le_bytes(b))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<&'a str, RelError> {
        let len = self.u32(what)? as usize; // lint:allow(cast) — u32 widens into usize
        let bytes = self.bytes(len, what)?;
        std::str::from_utf8(bytes).map_err(|e| RelError::Codec {
            detail: format!("invalid utf-8 in {what}: {e}"),
        })
    }

    /// Read one datum.
    pub fn datum(&mut self) -> Result<Datum, RelError> {
        let tag = self.u8("datum tag")?;
        Ok(match tag {
            TAG_NULL => Datum::Null,
            TAG_BOOL_FALSE => Datum::Bool(false),
            TAG_BOOL_TRUE => Datum::Bool(true),
            TAG_INT => Datum::Int(self.i64("int datum")?),
            TAG_FLOAT => Datum::Float(f64::from_bits(self.u64("float datum")?)),
            TAG_STR => Datum::Str(Arc::from(self.str("str datum")?)),
            TAG_DATE => Datum::Date(self.i32("date datum")?),
            other => {
                return Err(RelError::Codec {
                    detail: format!("unknown datum tag {other} at offset {}", self.pos - 1),
                })
            }
        })
    }

    /// Read a row (arity-prefixed datum sequence).
    pub fn row(&mut self) -> Result<Row, RelError> {
        let arity = self.u32("row arity")? as usize; // lint:allow(cast) — u32 widens into usize
                                                     // Guard against adversarial arities claiming more datums than bytes
                                                     // remain (every datum takes at least one tag byte).
        if arity > self.remaining() {
            return Err(RelError::Codec {
                detail: format!(
                    "row arity {arity} exceeds remaining {} bytes",
                    self.remaining()
                ),
            });
        }
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(self.datum()?);
        }
        Ok(row)
    }
}

/// Encode a single datum to a fresh buffer (tests and tools; bulk encoding
/// should reuse a buffer via [`put_datum`]).
pub fn encode_datum(d: &Datum) -> Result<Vec<u8>, RelError> {
    let mut buf = Vec::new();
    put_datum(&mut buf, d)?;
    Ok(buf)
}

/// Decode a single datum, requiring the buffer to be fully consumed.
pub fn decode_datum(data: &[u8]) -> Result<Datum, RelError> {
    let mut r = ByteReader::new(data);
    let d = r.datum()?;
    if !r.is_empty() {
        return Err(RelError::Codec {
            detail: format!("{} trailing bytes after datum", r.remaining()),
        });
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(d: &Datum) -> Datum {
        decode_datum(&encode_datum(d).unwrap()).unwrap()
    }

    fn bits_of(d: &Datum) -> Option<u64> {
        match d {
            Datum::Float(f) => Some(f.to_bits()),
            _ => None,
        }
    }

    #[test]
    fn all_variants_round_trip() {
        let values = [
            Datum::Null,
            Datum::Bool(false),
            Datum::Bool(true),
            Datum::Int(0),
            Datum::Int(i64::MIN),
            Datum::Int(i64::MAX),
            Datum::Float(3.25),
            Datum::str(""),
            Datum::str("héllo wörld"),
            Datum::Date(0),
            Datum::Date(-719_162), // year 1
            Datum::Date(2_932_896),
        ];
        for v in &values {
            assert_eq!(&round_trip(v), v, "{v:?}");
        }
    }

    #[test]
    fn float_bit_patterns_survive() {
        // The exact patterns PR 2's hasher tripped on: -0.0 vs 0.0,
        // NaN payloads, integral-valued floats.
        let patterns = [
            0.0f64.to_bits(),
            (-0.0f64).to_bits(),
            f64::NAN.to_bits(),
            f64::NAN.to_bits() | 0xDEAD, // non-canonical NaN payload
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            42.0f64.to_bits(), // integral-valued float
            f64::MIN_POSITIVE.to_bits(),
            1u64, // subnormal
        ];
        for bits in patterns {
            let d = Datum::Float(f64::from_bits(bits));
            let back = round_trip(&d);
            assert_eq!(bits_of(&back), Some(bits), "bits {bits:#018x}");
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let full = encode_datum(&Datum::str("some string payload")).unwrap();
        for cut in 0..full.len() {
            let err = decode_datum(&full[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert!(matches!(decode_datum(&[0xFF]), Err(RelError::Codec { .. })));
    }

    #[test]
    fn row_round_trip_and_arity_guard() {
        let row = vec![Datum::Int(7), Datum::Null, Datum::str("x")];
        let mut buf = Vec::new();
        put_row(&mut buf, &row).unwrap();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.row().unwrap(), row);
        assert!(r.is_empty());
        // A length prefix claiming 2^31 datums must fail fast, not allocate.
        let mut bad = Vec::new();
        put_u32(&mut bad, 1 << 31);
        assert!(ByteReader::new(&bad).row().is_err());
    }
}
