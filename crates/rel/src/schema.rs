//! Schemas: ordered, named, typed column lists.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::datum::{DataType, Datum};
use crate::error::RelError;
use crate::row::Row;

/// One column of a schema.
///
/// `qualifier` is the table (or alias) the column belongs to; view-wide
/// schemas concatenate the columns of several tables, so the qualifier is
/// what keeps `orders.o_orderkey` distinct from `lineitem.l_orderkey`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub qualifier: String,
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(qualifier: &str, name: &str, ty: DataType, nullable: bool) -> Self {
        Column {
            qualifier: qualifier.to_string(),
            name: name.to_string(),
            ty,
            nullable,
        }
    }

    /// `qualifier.name`.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.qualifier, self.name)
    }
}

/// An ordered list of columns with name-based lookup.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<Column>,
    /// `(qualifier, name) -> index`. Unqualified lookup falls back to a scan.
    by_name: HashMap<(String, String), usize>,
}

/// Shared schema handle. Relations and operators clone this freely.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema, rejecting duplicate qualified names.
    pub fn new(columns: Vec<Column>) -> Result<Self, RelError> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name
                .insert((c.qualifier.clone(), c.name.clone()), i)
                .is_some()
            {
                return Err(RelError::DuplicateColumn {
                    qualifier: c.qualifier.clone(),
                    name: c.name.clone(),
                });
            }
        }
        Ok(Schema { columns, by_name })
    }

    /// Build a shared schema handle.
    pub fn shared(columns: Vec<Column>) -> Result<SchemaRef, RelError> {
        Self::new(columns).map(Arc::new)
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Index of `qualifier.name`.
    pub fn index_of(&self, qualifier: &str, name: &str) -> Result<usize, RelError> {
        self.by_name
            .get(&(qualifier.to_string(), name.to_string()))
            .copied()
            .ok_or_else(|| RelError::UnknownColumn {
                qualifier: qualifier.to_string(),
                name: name.to_string(),
            })
    }

    /// Index of the unique column called `name` regardless of qualifier.
    ///
    /// Errors if the name is absent or ambiguous.
    pub fn index_of_unqualified(&self, name: &str) -> Result<usize, RelError> {
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name == name {
                if found.is_some() {
                    return Err(RelError::UnknownColumn {
                        qualifier: "<ambiguous>".to_string(),
                        name: name.to_string(),
                    });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| RelError::UnknownColumn {
            qualifier: "<any>".to_string(),
            name: name.to_string(),
        })
    }

    /// Concatenate two schemas (for join outputs).
    pub fn concat(&self, other: &Schema) -> Result<Schema, RelError> {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Canonicalize numeric-widened datums in place: an `Int` datum in a
    /// `Float` column becomes the equal `Float` (the representation columnar
    /// storage keeps). Applied at the update boundary so the delta handed to
    /// maintenance, the WAL record, and the stored row are byte-identical.
    /// `Datum` equality/ordering/hashing are already cross-type for this
    /// pair, so the rewrite is unobservable to predicates and keys.
    pub fn canonicalize_row(&self, row: &mut Row) {
        for (datum, col) in row.iter_mut().zip(&self.columns) {
            if col.ty == DataType::Float {
                if let Datum::Int(v) = datum {
                    *datum = Datum::Float(*v as f64);
                }
            }
        }
    }

    /// Validate a row against this schema: arity, nullability, and types.
    pub fn check_row(&self, row: &Row) -> Result<(), RelError> {
        if row.len() != self.columns.len() {
            return Err(RelError::TypeMismatch {
                detail: format!(
                    "row arity {} does not match schema arity {}",
                    row.len(),
                    self.columns.len()
                ),
            });
        }
        for (datum, col) in row.iter().zip(&self.columns) {
            match datum {
                Datum::Null => {
                    if !col.nullable {
                        return Err(RelError::TypeMismatch {
                            detail: format!("NULL in non-nullable column {}", col.qualified_name()),
                        });
                    }
                }
                d => {
                    let ty = d.data_type().expect("non-null datum has a type");
                    // Ints are accepted in float columns (numeric widening).
                    let ok = ty == col.ty || (ty == DataType::Int && col.ty == DataType::Float);
                    if !ok {
                        return Err(RelError::TypeMismatch {
                            detail: format!(
                                "column {} expects {} but got {}",
                                col.qualified_name(),
                                col.ty,
                                ty
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.qualified_name(), c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("t", "a", DataType::Int, false),
            Column::new("t", "b", DataType::Str, true),
            Column::new("u", "a", DataType::Int, true),
        ])
        .unwrap()
    }

    #[test]
    fn index_lookup_qualified() {
        let s = sample();
        assert_eq!(s.index_of("t", "a").unwrap(), 0);
        assert_eq!(s.index_of("u", "a").unwrap(), 2);
        assert!(s.index_of("v", "a").is_err());
    }

    #[test]
    fn unqualified_lookup_detects_ambiguity() {
        let s = sample();
        assert_eq!(s.index_of_unqualified("b").unwrap(), 1);
        assert!(s.index_of_unqualified("a").is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("t", "a", DataType::Int, false),
            Column::new("t", "a", DataType::Int, false),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn check_row_enforces_nullability_and_types() {
        let s = sample();
        assert!(s
            .check_row(&vec![Datum::Int(1), Datum::str("x"), Datum::Null])
            .is_ok());
        assert!(s
            .check_row(&vec![Datum::Null, Datum::str("x"), Datum::Null])
            .is_err());
        assert!(s
            .check_row(&vec![Datum::str("no"), Datum::str("x"), Datum::Null])
            .is_err());
        assert!(s.check_row(&vec![Datum::Int(1)]).is_err());
    }

    #[test]
    fn concat_schemas() {
        let a = Schema::new(vec![Column::new("t", "a", DataType::Int, false)]).unwrap();
        let b = Schema::new(vec![Column::new("u", "b", DataType::Int, false)]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.index_of("u", "b").unwrap(), 1);
    }
}
