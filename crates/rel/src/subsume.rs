//! The paper's Section 2.1 tuple-level operators: subsumption, removal of
//! subsumed tuples (`↓`), outer union (`⊎`), and minimum union (`⊕`).

use std::collections::HashMap;

use crate::datum::Datum;
use crate::error::RelError;
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::{Column, Schema, SchemaRef};

/// Tuple subsumption (paper §2.1): `t1` subsumes `t2` iff they are defined on
/// the same schema, they agree on every column where **both** are non-null,
/// `t1` has strictly fewer nulls, and `t2` is null wherever `t1` is null...
///
/// More precisely, per the paper: `t1` agrees with `t2` on all columns where
/// both are non-null and `t1` contains fewer null values than `t2`. Note that
/// this alone would let `(1, NULL)` and `(NULL, 2)` interact; the standard
/// reading (Galindo-Legaria) additionally requires `t2`'s non-null columns to
/// be a subset of `t1`'s, which is what we implement: `t1` subsumes `t2` iff
/// every non-null column of `t2` is non-null in `t1` with the same value, and
/// `t1` is non-null on at least one column where `t2` is null.
pub fn subsumes(t1: &[Datum], t2: &[Datum]) -> bool {
    debug_assert_eq!(t1.len(), t2.len());
    let mut strictly_more = false;
    for (a, b) in t1.iter().zip(t2.iter()) {
        match (a.is_null(), b.is_null()) {
            (true, false) => return false, // t2 has a value where t1 is null
            (false, false) => {
                if a != b {
                    return false;
                }
            }
            (false, true) => strictly_more = true,
            (true, true) => {}
        }
    }
    strictly_more
}

/// Removal of subsumed tuples — the paper's `T↓`.
///
/// Returns the tuples of `rel` not subsumed by any other tuple in `rel`.
/// Duplicates are preserved (`↓` is not duplicate elimination).
///
/// The implementation groups rows by their non-null "signature" pattern and
/// only compares rows against rows with strictly larger signatures, but the
/// worst case remains quadratic, which is fine for the term-sized inputs this
/// is used on (tests and reference computations; the maintenance fast paths
/// never call it on full views).
pub fn remove_subsumed(rel: &Relation) -> Relation {
    let rows = rel.rows();
    let mut keep = vec![true; rows.len()];
    // Group rows by null-pattern bitmask (usable when width <= 64).
    let width = rel.schema().len();
    if width <= 64 {
        let mask_of = |r: &Row| -> u64 {
            let mut m = 0u64;
            for (i, d) in r.iter().enumerate() {
                if !d.is_null() {
                    m |= 1 << i;
                }
            }
            m
        };
        let masks: Vec<u64> = rows.iter().map(&mask_of).collect();
        let mut by_mask: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &m) in masks.iter().enumerate() {
            by_mask.entry(m).or_default().push(i);
        }
        let distinct_masks: Vec<u64> = by_mask.keys().copied().collect();
        for (i, row) in rows.iter().enumerate() {
            let mi = masks[i];
            'outer: for &mj in &distinct_masks {
                // A subsumer must be non-null on a strict superset of columns.
                if mj & mi != mi || mj == mi {
                    continue;
                }
                for &j in &by_mask[&mj] {
                    if subsumes(&rows[j], row) {
                        keep[i] = false;
                        break 'outer;
                    }
                }
            }
        }
    } else {
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                if i != j && subsumes(&rows[j], &rows[i]) {
                    keep[i] = false;
                    break;
                }
            }
        }
    }
    let kept = rows
        .iter()
        .zip(keep)
        .filter_map(|(r, k)| if k { Some(r.clone()) } else { None })
        .collect();
    Relation::new(rel.schema().clone(), kept)
}

/// Compute the outer-union schema `S1 ∪ S2` (by qualified column name).
///
/// Columns present in only one operand become nullable in the result, since
/// the other operand's tuples are null-extended on them.
pub fn outer_union_schema(s1: &Schema, s2: &Schema) -> Result<SchemaRef, RelError> {
    let mut cols: Vec<Column> = s1.columns().to_vec();
    for c in s2.columns() {
        match s1.index_of(&c.qualifier, &c.name) {
            Ok(i) => {
                if s1.column(i).ty != c.ty {
                    return Err(RelError::TypeMismatch {
                        detail: format!(
                            "outer union column {} has conflicting types",
                            c.qualified_name()
                        ),
                    });
                }
            }
            Err(_) => {
                let mut c = c.clone();
                c.nullable = true;
                cols.push(c);
            }
        }
    }
    // Columns only in s1 must also become nullable.
    for c in cols.iter_mut() {
        if s2.index_of(&c.qualifier, &c.name).is_err() && s1.index_of(&c.qualifier, &c.name).is_ok()
        {
            c.nullable = true;
        }
    }
    Schema::shared(cols)
}

/// Outer union `T1 ⊎ T2` (paper §2.1): null-extend both operands to the union
/// schema, then take the bag union (no duplicate elimination).
pub fn outer_union(r1: &Relation, r2: &Relation) -> Result<Relation, RelError> {
    let schema = outer_union_schema(r1.schema(), r2.schema())?;
    let mut rows = Vec::with_capacity(r1.len() + r2.len());
    let map1 = column_mapping(r1.schema(), &schema);
    let map2 = column_mapping(r2.schema(), &schema);
    for r in r1.rows() {
        rows.push(extend_row(r, &map1, schema.len()));
    }
    for r in r2.rows() {
        rows.push(extend_row(r, &map2, schema.len()));
    }
    Ok(Relation::new(schema, rows))
}

/// Minimum union `T1 ⊕ T2 = (T1 ⊎ T2)↓` (paper §2.1).
pub fn minimum_union(r1: &Relation, r2: &Relation) -> Result<Relation, RelError> {
    Ok(remove_subsumed(&outer_union(r1, r2)?))
}

/// For each column of `from`, its index in `to`.
fn column_mapping(from: &Schema, to: &Schema) -> Vec<usize> {
    from.columns()
        .iter()
        .map(|c| {
            to.index_of(&c.qualifier, &c.name)
                .expect("outer-union schema contains all operand columns")
        })
        .collect()
}

fn extend_row(row: &Row, mapping: &[usize], width: usize) -> Row {
    let mut out = vec![Datum::Null; width];
    for (src, &dst) in mapping.iter().enumerate() {
        out[dst] = row[src].clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::DataType;

    fn n() -> Datum {
        Datum::Null
    }
    fn i(v: i64) -> Datum {
        Datum::Int(v)
    }

    #[test]
    fn subsumption_basics() {
        assert!(subsumes(&[i(1), i(2)], &[i(1), n()]));
        assert!(!subsumes(&[i(1), n()], &[i(1), i(2)]));
        assert!(!subsumes(&[i(1), i(2)], &[i(1), i(2)])); // equal: not fewer nulls
        assert!(subsumes(&[i(1), i(3)], &[i(1), n()]));
        assert!(!subsumes(&[i(2), i(3)], &[i(1), n()])); // disagrees on non-null col
    }

    #[test]
    fn incomparable_null_patterns_do_not_subsume() {
        assert!(!subsumes(&[i(1), n()], &[n(), i(2)]));
        assert!(!subsumes(&[n(), i(2)], &[i(1), n()]));
    }

    #[test]
    fn remove_subsumed_keeps_maximal_rows() {
        let s = Schema::shared(vec![
            Column::new("t", "a", DataType::Int, true),
            Column::new("t", "b", DataType::Int, true),
        ])
        .unwrap();
        let r = Relation::new(
            s,
            vec![
                vec![i(1), i(2)],
                vec![i(1), n()], // subsumed by [1,2]
                vec![i(3), n()], // kept
                vec![n(), i(2)], // kept (incomparable with [1,2]? no: [1,2] subsumes it!)
            ],
        );
        let out = remove_subsumed(&r);
        // [NULL,2] IS subsumed by [1,2]: non-null cols of t2 = {b}, t1 agrees (2),
        // and t1 has fewer nulls.
        let rows: Vec<_> = out.rows().to_vec();
        assert!(rows.contains(&vec![i(1), i(2)]));
        assert!(rows.contains(&vec![i(3), n()]));
        assert!(!rows.contains(&vec![i(1), n()]));
        assert!(!rows.contains(&vec![n(), i(2)]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn remove_subsumed_preserves_duplicates() {
        let s = Schema::shared(vec![Column::new("t", "a", DataType::Int, true)]).unwrap();
        let r = Relation::new(s, vec![vec![i(1)], vec![i(1)]]);
        assert_eq!(remove_subsumed(&r).len(), 2);
    }

    #[test]
    fn outer_union_null_extends() {
        let s1 = Schema::shared(vec![Column::new("t", "a", DataType::Int, false)]).unwrap();
        let s2 = Schema::shared(vec![Column::new("u", "b", DataType::Int, false)]).unwrap();
        let r1 = Relation::new(s1, vec![vec![i(1)]]);
        let r2 = Relation::new(s2, vec![vec![i(2)]]);
        let u = outer_union(&r1, &r2).unwrap();
        assert_eq!(u.schema().len(), 2);
        assert!(u.rows().contains(&vec![i(1), n()]));
        assert!(u.rows().contains(&vec![n(), i(2)]));
        // Every column of an outer union is nullable.
        assert!(u.schema().columns().iter().all(|c| c.nullable));
    }

    #[test]
    fn minimum_union_is_commutative_and_associative_on_samples() {
        let s1 = Schema::shared(vec![
            Column::new("t", "a", DataType::Int, true),
            Column::new("t", "b", DataType::Int, true),
        ])
        .unwrap();
        let r1 = Relation::new(s1.clone(), vec![vec![i(1), i(2)]]);
        let r2 = Relation::new(s1.clone(), vec![vec![i(1), n()], vec![i(5), n()]]);
        let ab = minimum_union(&r1, &r2).unwrap();
        let ba = minimum_union(&r2, &r1).unwrap();
        assert!(ab.bag_eq(&ba));
        // (1,NULL) is subsumed by (1,2); (5,NULL) survives.
        assert_eq!(ab.len(), 2);

        let r3 = Relation::new(s1, vec![vec![i(5), i(6)]]);
        let left = minimum_union(&minimum_union(&r1, &r2).unwrap(), &r3).unwrap();
        let right = minimum_union(&r1, &minimum_union(&r2, &r3).unwrap()).unwrap();
        assert!(left.bag_eq(&right));
    }

    #[test]
    fn outer_union_rejects_type_conflicts() {
        let s1 = Schema::shared(vec![Column::new("t", "a", DataType::Int, false)]).unwrap();
        let s2 = Schema::shared(vec![Column::new("t", "a", DataType::Str, false)]).unwrap();
        let r1 = Relation::empty(s1);
        let r2 = Relation::empty(s2);
        assert!(outer_union(&r1, &r2).is_err());
    }
}
