//! Rows and key extraction.

use crate::datum::Datum;

/// A row is a dense vector of datums, positionally aligned with a
/// [`crate::Schema`].
///
/// View-wide rows carry one slot per column of every base table the view
/// references; slots of tables a tuple is null-extended on hold
/// [`Datum::Null`].
pub type Row = Vec<Datum>;

/// Extract the sub-tuple at `cols` — used for join keys, unique keys, and the
/// paper's `eq(T_i)` equijoin predicates over term keys.
pub fn key_of(row: &[Datum], cols: &[usize]) -> Vec<Datum> {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// Extract the sub-tuple at `cols` into a caller-owned buffer, reusing its
/// allocation — the loop-friendly form of [`key_of`] for probe loops that
/// genuinely need an owned key (e.g. map insertion on miss).
#[inline]
pub fn key_into(row: &[Datum], cols: &[usize], out: &mut Vec<Datum>) {
    out.clear();
    out.extend(cols.iter().map(|&c| row[c].clone()));
}

/// True iff every column in `cols` is null — the paper's `null(T)` predicate
/// evaluated over a table's key columns.
pub fn all_null(row: &[Datum], cols: &[usize]) -> bool {
    cols.iter().all(|&c| row[c].is_null())
}

/// True iff every column in `cols` is non-null — the paper's `¬null(T)`.
pub fn all_non_null(row: &[Datum], cols: &[usize]) -> bool {
    cols.iter().all(|&c| !row[c].is_null())
}

/// Render a row for debugging and the `repro` binary's table output.
pub fn row_display(row: &[Datum]) -> String {
    let mut s = String::from("[");
    for (i, d) in row.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&d.to_string());
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_extraction() {
        let row = vec![Datum::Int(1), Datum::str("x"), Datum::Int(3)];
        assert_eq!(key_of(&row, &[2, 0]), vec![Datum::Int(3), Datum::Int(1)]);
        assert_eq!(key_of(&row, &[]), Vec::<Datum>::new());
    }

    #[test]
    fn null_tests() {
        let row = vec![Datum::Null, Datum::Int(2), Datum::Null];
        assert!(all_null(&row, &[0, 2]));
        assert!(!all_null(&row, &[0, 1]));
        assert!(all_non_null(&row, &[1]));
        assert!(!all_non_null(&row, &[1, 2]));
        // Vacuous truth on the empty column set.
        assert!(all_null(&row, &[]));
        assert!(all_non_null(&row, &[]));
    }

    #[test]
    fn display() {
        let row = vec![Datum::Int(1), Datum::Null];
        assert_eq!(row_display(&row), "[1, NULL]");
    }
}
