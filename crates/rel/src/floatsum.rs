//! An exact accumulator for sums of `f64` values.
//!
//! Incremental view maintenance adds and removes contributions to a `SUM`
//! aggregate in whatever order updates arrive, while a from-scratch
//! recompute folds the surviving rows in view order. Plain `f64` addition is
//! not associative, so the two orders can disagree in the last ulp and a
//! maintained aggregate would slowly drift away from its recomputed value.
//!
//! [`ExactFloatSum`] side-steps the problem with a Kulisch-style fixed-point
//! superaccumulator: a 2176-bit two's-complement integer whose bit `k` has
//! weight `2^(k-1074)`. Every finite `f64` is an integer multiple of
//! `2^-1074` with at most 53 significant bits, so adding or subtracting one
//! is *exact* — the accumulator state depends only on the multiset of values
//! currently in the sum, never on arrival order or cancellation history.
//! [`ExactFloatSum::to_f64`] rounds the exact value to nearest-even once, at
//! read time.

/// 2176 bits: weights 2^-1074 ..= 2^1023 need 2098 bits for any single
/// finite `f64`; the remaining 78 high bits absorb carries, which supports
/// ~2^77 accumulated values before overflow — unreachable in practice.
const LIMBS: usize = 34;

/// Bias between accumulator bit positions and binary weights: bit 0 weighs
/// `2^-BIAS`.
const BIAS: i32 = 1074;

/// Exact running sum of finite `f64` values (order-independent).
#[derive(Clone, PartialEq, Eq)]
pub struct ExactFloatSum {
    /// Little-endian two's-complement limbs; bit `64*i + j` of the value is
    /// bit `j` of `limbs[i]`.
    limbs: [u64; LIMBS],
}

impl Default for ExactFloatSum {
    fn default() -> Self {
        ExactFloatSum { limbs: [0; LIMBS] }
    }
}

impl std::fmt::Debug for ExactFloatSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExactFloatSum({})", self.to_f64())
    }
}

impl ExactFloatSum {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Add `v` to the sum. Exact for every finite `v`.
    pub fn add(&mut self, v: f64) {
        self.accumulate(v, false);
    }

    /// Subtract `v` from the sum. Exactly undoes a prior `add(v)`.
    pub fn sub(&mut self, v: f64) {
        self.accumulate(v, true);
    }

    fn accumulate(&mut self, v: f64, negate: bool) {
        assert!(v.is_finite(), "ExactFloatSum over non-finite value {v}");
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        // value = mantissa * 2^(max(exp,1) - 1075); subnormals reuse the
        // exp=1 scale without the hidden bit.
        let (mantissa, eeff) = if exp == 0 {
            (frac, 1 - 1075)
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        if mantissa == 0 {
            return;
        }
        let negative = ((bits >> 63) == 1) ^ negate;
        let offset = (eeff + BIAS) as usize;
        let (limb, shift) = (offset / 64, offset % 64);
        let wide = (mantissa as u128) << shift;
        let (lo, hi) = (wide as u64, (wide >> 64) as u64);
        if negative {
            self.sub_at(limb, lo, hi);
        } else {
            self.add_at(limb, lo, hi);
        }
    }

    fn add_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (r, mut carry) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = r;
        let mut i = limb + 1;
        let mut pending = hi;
        while i < LIMBS && (pending != 0 || carry) {
            let (r, c1) = self.limbs[i].overflowing_add(pending);
            let (r, c2) = r.overflowing_add(carry as u64);
            self.limbs[i] = r;
            carry = c1 || c2;
            pending = 0;
            i += 1;
        }
        // A carry off the top wraps around — two's complement keeps the
        // arithmetic consistent as long as the true sum stays in range,
        // which the 78 headroom bits guarantee.
    }

    fn sub_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (r, mut borrow) = self.limbs[limb].overflowing_sub(lo);
        self.limbs[limb] = r;
        let mut i = limb + 1;
        let mut pending = hi;
        while i < LIMBS && (pending != 0 || borrow) {
            let (r, b1) = self.limbs[i].overflowing_sub(pending);
            let (r, b2) = r.overflowing_sub(borrow as u64);
            self.limbs[i] = r;
            borrow = b1 || b2;
            pending = 0;
            i += 1;
        }
    }

    /// The exact sum rounded to the nearest `f64` (ties to even). Returns
    /// `±infinity` if the exact value exceeds the finite range.
    pub fn to_f64(&self) -> f64 {
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mag = if negative { self.negated() } else { self.limbs };
        // Highest set bit of the magnitude.
        let Some(top_limb) = (0..LIMBS).rev().find(|&i| mag[i] != 0) else {
            return 0.0;
        };
        let h = top_limb * 64 + 63 - mag[top_limb].leading_zeros() as usize;
        if h < 53 {
            // At most 53 significant bits of weight 2^-1074: exactly a
            // (sub)normal near the bottom of the range; no rounding needed.
            // `from_bits(1)` is 2^-1074; the product has at most 53
            // significant bits, so the correctly-rounded multiply is exact.
            let small = mag[0] as f64 * f64::from_bits(1);
            return if negative { -small } else { small };
        }
        // Extract the top 53 bits [h-52, h] and round to nearest-even on
        // the rest.
        let mut top = Self::extract_bits(&mag, h - 52, 53);
        let round = Self::bit(&mag, h - 53);
        let sticky = h >= 54 && Self::any_below(&mag, h - 53);
        if round && (sticky || top & 1 == 1) {
            top += 1;
        }
        let mut e = h as i32 - BIAS; // unbiased exponent of bit h
        if top == 1u64 << 53 {
            top >>= 1;
            e += 1;
        }
        if e > 1023 {
            return if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        // h >= 53 implies e >= -1021, so the result is always normal.
        let bits = (((e + 1023) as u64) << 52) | (top & ((1u64 << 52) - 1));
        let v = f64::from_bits(bits);
        if negative {
            -v
        } else {
            v
        }
    }

    fn negated(&self) -> [u64; LIMBS] {
        let mut out = [0u64; LIMBS];
        let mut carry = true;
        for (o, &l) in out.iter_mut().zip(&self.limbs) {
            let (r, c) = (!l).overflowing_add(carry as u64);
            *o = r;
            carry = c;
        }
        out
    }

    fn bit(limbs: &[u64; LIMBS], pos: usize) -> bool {
        limbs[pos / 64] >> (pos % 64) & 1 == 1
    }

    /// `count` bits starting at `pos` (little-endian), `count <= 53`.
    fn extract_bits(limbs: &[u64; LIMBS], pos: usize, count: usize) -> u64 {
        let (limb, shift) = (pos / 64, pos % 64);
        let mut v = limbs[limb] >> shift;
        if shift != 0 && limb + 1 < LIMBS {
            v |= limbs[limb + 1] << (64 - shift);
        }
        v & ((1u64 << count) - 1)
    }

    /// Any set bit strictly below `pos`?
    fn any_below(limbs: &[u64; LIMBS], pos: usize) -> bool {
        let (limb, shift) = (pos / 64, pos % 64);
        if limbs[..limb].iter().any(|&l| l != 0) {
            return true;
        }
        shift != 0 && limbs[limb] & ((1u64 << shift) - 1) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(values: &[f64]) -> f64 {
        let mut acc = ExactFloatSum::new();
        for &v in values {
            acc.add(v);
        }
        acc.to_f64()
    }

    #[test]
    fn single_values_round_trip_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -2.5,
            1e300,
            -1e300,
            1e-300,
            f64::MIN_POSITIVE,
            f64::from_bits(1),       // smallest subnormal
            f64::from_bits(0xfffff), // a subnormal
            f64::MAX,
            f64::MIN,
            251818.57,
        ] {
            assert_eq!(sum_of(&[v]).to_bits(), (v + 0.0).to_bits(), "value {v}");
        }
    }

    #[test]
    fn order_independent() {
        let values = [0.1, 0.2, 0.3, 1e16, -1e16, 7.25, -0.30000000000000004];
        let forward = sum_of(&values);
        let mut rev = values;
        rev.reverse();
        assert_eq!(forward.to_bits(), sum_of(&rev).to_bits());
    }

    #[test]
    fn cancellation_returns_to_exact_zero() {
        let mut acc = ExactFloatSum::new();
        let values = [0.1, 0.2, 0.3, 12345.678, -9.25e-5, 1e200, 4.0 / 3.0];
        for &v in &values {
            acc.add(v);
        }
        for &v in &values {
            acc.sub(v);
        }
        assert!(acc.is_zero());
        assert_eq!(acc.to_f64().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn classic_non_associative_case_is_exact() {
        // (1e16 + 1) - 1e16 == 0 in f64 left-to-right; the exact sum is 1.
        assert_eq!(sum_of(&[1e16, 1.0, -1e16]), 1.0);
        // 0.1 + 0.2 rounds to the f64 nearest the exact rational sum of the
        // two representations, which is NOT f64 0.3.
        assert_eq!(sum_of(&[0.1, 0.2]), 0.1 + 0.2);
    }

    #[test]
    fn matches_integer_model_for_cent_values() {
        // Sums of n/100 prices modelled exactly in i64 cents, compared after
        // rounding. The accumulator sums the *f64 representations* exactly,
        // so compare against a correctly-ordered compensated reference:
        // adding the same multiset in any order must equal left-to-right
        // exact accumulation.
        let prices: Vec<f64> = (0..1000)
            .map(|i| (i * 37 % 100000) as f64 / 100.0)
            .collect();
        let forward = sum_of(&prices);
        let mut shuffled = prices.clone();
        // Deterministic shuffle.
        let mut s = 0x9e3779b97f4a7c15u64;
        for i in (1..shuffled.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        assert_eq!(forward.to_bits(), sum_of(&shuffled).to_bits());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let mut acc = ExactFloatSum::new();
        acc.add(f64::MAX);
        acc.add(f64::MAX);
        assert_eq!(acc.to_f64(), f64::INFINITY);
        acc.sub(f64::MAX);
        assert_eq!(acc.to_f64(), f64::MAX);
    }

    #[test]
    fn subnormal_sums_are_exact() {
        let tiny = f64::from_bits(3); // 3 * 2^-1074
        assert_eq!(sum_of(&[tiny, tiny]).to_bits(), f64::from_bits(6).to_bits());
        assert_eq!(sum_of(&[tiny, -tiny]), 0.0);
    }
}
