//! Relational data-model substrate for the outer-join view maintenance
//! library.
//!
//! This crate defines the value, schema, row, and relation types shared by
//! every other crate in the workspace, together with the row-level operators
//! from Section 2.1 of Larson & Zhou, ICDE 2007:
//!
//! * [`Datum`] — a dynamically typed SQL-style value with a distinguished
//!   `NULL`,
//! * [`Schema`] / [`Column`] — ordered, named, typed column lists,
//! * [`Relation`] — a materialized bag of rows over a schema,
//! * tuple *subsumption* and *removal of subsumed tuples* (the `↓` operator),
//! * *outer union* (`⊎`) and *minimum union* (`⊕`).
//!
//! Everything here is deliberately engine-agnostic: no indexes, no
//! constraints, no operators beyond the algebraic primitives the paper's
//! definitions need. Those live in `ojv-storage` and `ojv-exec`.

#![deny(unsafe_code)]

// SAFETY: the allocator shim must implement `GlobalAlloc`, an unsafe trait;
// it is the single allowlisted unsafe module in the workspace (the
// `unsafe-code` lint in `cargo run -p xtask -- lint` enforces this).
#[allow(unsafe_code)]
pub mod alloc;
pub mod codec;
pub mod datum;
pub mod error;
pub mod floatsum;
pub mod fxhash;
pub mod relation;
pub mod row;
pub mod rowbuf;
pub mod schema;
pub mod subsume;

pub use alloc::{alloc_counting_active, alloc_snapshot, AllocSnapshot, CountingAlloc};
pub use codec::{
    decode_datum, encode_datum, put_datum, put_row, put_str, put_u32, put_u64, ByteReader,
};
pub use datum::{date, date_from_days, days_from_date, DataType, Datum, DatumRef};
pub use error::RelError;
pub use floatsum::ExactFloatSum;
pub use fxhash::{
    fx_hash_one, fx_map_with_capacity, fx_set_with_capacity, FxBuildHasher, FxHashMap, FxHashSet,
    FxHasher,
};
pub use relation::Relation;
pub use row::{all_non_null, all_null, key_into, key_of, row_display, Row};
pub use rowbuf::{key_eq, key_eq_rows, key_hash, key_hash_with, RowBuf};
pub use schema::{Column, Schema, SchemaRef};
pub use subsume::{minimum_union, outer_union, outer_union_schema, remove_subsumed, subsumes};
