//! Heap-allocation accounting for EXPLAIN counters and discipline tests.
//!
//! [`CountingAlloc`] wraps the system allocator and bumps two relaxed global
//! counters on every allocation. It is **not** installed by this crate:
//! binaries or test harnesses that want accounting opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static A: ojv_rel::CountingAlloc = ojv_rel::CountingAlloc;
//! ```
//!
//! When no such harness installs it, the counters simply stay at zero and
//! [`alloc_snapshot`] deltas read as 0 — operators report "allocation
//! counting off" rather than lying. The counters are global (not
//! per-thread), which is exactly what the per-operator EXPLAIN counters
//! want: a morsel-parallel probe's allocations land on the operator that
//! spawned the morsels.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` that forwards to [`System`] and counts allocations.
pub struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter bumps have no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Process-wide traffic counters on the allocator hot path;
        // deltas are read across a scope join.
        // concheck:allow(atomic-ordering)
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed); // concheck:allow(atomic-ordering)
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed); // concheck:allow(atomic-ordering)
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed); // concheck:allow(atomic-ordering)
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed); // concheck:allow(atomic-ordering)
                                                     // Count only the growth; shrinking reallocs don't add heap traffic.
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed, // concheck:allow(atomic-ordering)
        );
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the global allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    pub count: u64,
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas since `earlier` (saturating, in case of wrap).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            count: self.count.saturating_sub(earlier.count),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Read the global allocation counters. Zero unless a harness installed
/// [`CountingAlloc`] as its `#[global_allocator]`.
#[inline]
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        // Snapshot of monotonic counters; callers only compare deltas
        // taken on one thread.
        // concheck:allow(atomic-ordering)
        count: ALLOC_COUNT.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed), // concheck:allow(atomic-ordering)
    }
}

/// True iff the counters have ever moved — i.e. a counting allocator is
/// actually installed in this process.
#[inline]
pub fn alloc_counting_active() -> bool {
    // concheck:allow(atomic-ordering) heuristic probe, any stale read is fine
    ALLOC_COUNT.load(Ordering::Relaxed) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let a = AllocSnapshot {
            count: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            count: 13,
            bytes: 164,
        };
        assert_eq!(
            b.since(&a),
            AllocSnapshot {
                count: 3,
                bytes: 64
            }
        );
        // Saturates instead of wrapping.
        assert_eq!(a.since(&b), AllocSnapshot::default());
    }
}
