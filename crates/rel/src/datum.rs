//! Dynamically typed SQL-style values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    /// Days since 1970-01-01 (proleptic Gregorian).
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single SQL-style value.
///
/// `Null` is a first-class member of the domain: outer joins null-extend
/// tuples, and view rows routinely carry nulls in the columns of tables they
/// are null-extended on. Comparison follows a total order with `Null` sorting
/// first, which is used for keys and sorting — *predicate* evaluation treats
/// nulls separately (all the paper's predicates are null-rejecting).
#[derive(Debug, Clone)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Datum {
    /// Convenience constructor for string datums.
    pub fn str(s: impl AsRef<str>) -> Self {
        Datum::Str(Arc::from(s.as_ref()))
    }

    /// True iff this value is `NULL`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The datum's runtime type, or `None` for `NULL`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int(_) => Some(DataType::Int),
            Datum::Float(_) => Some(DataType::Float),
            Datum::Str(_) => Some(DataType::Str),
            Datum::Date(_) => Some(DataType::Date),
        }
    }

    /// Extract an integer, panicking on type mismatch. Plans are type-checked
    /// before execution, so a mismatch here is a planner bug.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float (also accepts ints, widening).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a date (days since epoch).
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Datum::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Extract a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order datums of different variants (`Null` first).
    fn variant_rank(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 2,
            Datum::Float(_) => 3,
            Datum::Str(_) => 4,
            Datum::Date(_) => 5,
        }
    }

    /// SQL-style three-valued comparison: `None` if either side is `NULL`.
    ///
    /// Numeric variants compare across `Int`/`Float`.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Float(a), Datum::Float(b)) => Some(total_f64_cmp(*a, *b)),
            (Datum::Int(a), Datum::Float(b)) => Some(cmp_int_float(*a, *b)),
            (Datum::Float(a), Datum::Int(b)) => Some(cmp_int_float(*b, *a).reverse()),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Str(a), Datum::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Datum::Date(a), Datum::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality: `None` (unknown) if either side is `NULL`.
    pub fn sql_eq(&self, other: &Datum) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }
}

/// A borrowed view of a [`Datum`] — the unit columnar storage hands out.
///
/// Column-major pages cannot return `&Datum` (no `Datum` exists in memory;
/// values live in typed column vectors), so readers get this by-value view
/// instead: scalar variants are copied, strings are borrowed. Equality,
/// ordering, and hashing mirror [`Datum`] *exactly* — in particular
/// `Int`/`Float` cross-type equality and the hash through the float bit
/// pattern — so a `DatumRef` key probe hits the same buckets an owned
/// `Datum` key occupies.
#[derive(Debug, Clone, Copy)]
pub enum DatumRef<'a> {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(&'a str),
    /// Days since 1970-01-01.
    Date(i32),
}

impl<'a> DatumRef<'a> {
    /// True iff this value is `NULL`.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, DatumRef::Null)
    }

    /// Materialize an owned [`Datum`]. Strings allocate a fresh `Arc<str>`;
    /// hot paths that need the owned datum should prefer storage-level
    /// accessors that clone the backing `Arc` instead.
    pub fn to_datum(self) -> Datum {
        match self {
            DatumRef::Null => Datum::Null,
            DatumRef::Bool(b) => Datum::Bool(b),
            DatumRef::Int(v) => Datum::Int(v),
            DatumRef::Float(v) => Datum::Float(v),
            DatumRef::Str(s) => Datum::str(s),
            DatumRef::Date(d) => Datum::Date(d),
        }
    }

    /// SQL-style three-valued comparison; mirrors [`Datum::sql_cmp`].
    pub fn sql_cmp(self, other: DatumRef<'_>) -> Option<Ordering> {
        match (self, other) {
            (DatumRef::Null, _) | (_, DatumRef::Null) => None,
            (DatumRef::Int(a), DatumRef::Int(b)) => Some(a.cmp(&b)),
            (DatumRef::Float(a), DatumRef::Float(b)) => Some(total_f64_cmp(a, b)),
            (DatumRef::Int(a), DatumRef::Float(b)) => Some(cmp_int_float(a, b)),
            (DatumRef::Float(a), DatumRef::Int(b)) => Some(cmp_int_float(b, a).reverse()),
            (DatumRef::Bool(a), DatumRef::Bool(b)) => Some(a.cmp(&b)),
            (DatumRef::Str(a), DatumRef::Str(b)) => Some(a.cmp(b)),
            (DatumRef::Date(a), DatumRef::Date(b)) => Some(a.cmp(&b)),
            _ => None,
        }
    }

    /// [`Self::sql_cmp`] against an owned datum without materializing.
    #[inline]
    pub fn sql_cmp_datum(self, other: &Datum) -> Option<Ordering> {
        self.sql_cmp(other.as_ref())
    }

    fn variant_rank(self) -> u8 {
        match self {
            DatumRef::Null => 0,
            DatumRef::Bool(_) => 1,
            DatumRef::Int(_) => 2,
            DatumRef::Float(_) => 3,
            DatumRef::Str(_) => 4,
            DatumRef::Date(_) => 5,
        }
    }

    /// Total order mirroring [`Datum`]'s `Ord` (`NULL` first, numeric
    /// cross-type comparison, then variant rank).
    pub fn total_cmp(self, other: DatumRef<'_>) -> Ordering {
        match (self, other) {
            (DatumRef::Null, DatumRef::Null) => Ordering::Equal,
            (DatumRef::Int(a), DatumRef::Float(b)) => cmp_int_float(a, b),
            (DatumRef::Float(a), DatumRef::Int(b)) => cmp_int_float(b, a).reverse(),
            _ => match self.variant_rank().cmp(&other.variant_rank()) {
                Ordering::Equal => match (self, other) {
                    (DatumRef::Bool(a), DatumRef::Bool(b)) => a.cmp(&b),
                    (DatumRef::Int(a), DatumRef::Int(b)) => a.cmp(&b),
                    (DatumRef::Float(a), DatumRef::Float(b)) => total_f64_cmp(a, b),
                    (DatumRef::Str(a), DatumRef::Str(b)) => a.cmp(b),
                    (DatumRef::Date(a), DatumRef::Date(b)) => a.cmp(&b),
                    _ => unreachable!("equal variant ranks imply equal variants"),
                },
                o => o,
            },
        }
    }
}

impl PartialEq for DatumRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(*other) == Ordering::Equal
    }
}

impl Eq for DatumRef<'_> {}

impl PartialEq<Datum> for DatumRef<'_> {
    fn eq(&self, other: &Datum) -> bool {
        *self == other.as_ref()
    }
}

impl Hash for DatumRef<'_> {
    /// Byte-for-byte the same hash stream as [`Datum`]'s `Hash` impl, so
    /// borrowed probes can hit maps keyed by owned datums.
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            DatumRef::Null => state.write_u8(0),
            DatumRef::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            DatumRef::Int(v) => {
                state.write_u8(2);
                state.write_u64((*v as f64).to_bits());
            }
            DatumRef::Float(v) => {
                state.write_u8(2);
                state.write_u64(v.to_bits());
            }
            DatumRef::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            DatumRef::Date(d) => {
                state.write_u8(5);
                d.hash(state);
            }
        }
    }
}

impl Datum {
    /// Borrow this datum as a [`DatumRef`].
    #[inline]
    pub fn as_ref(&self) -> DatumRef<'_> {
        match self {
            Datum::Null => DatumRef::Null,
            Datum::Bool(b) => DatumRef::Bool(*b),
            Datum::Int(v) => DatumRef::Int(*v),
            Datum::Float(v) => DatumRef::Float(*v),
            Datum::Str(s) => DatumRef::Str(s),
            Datum::Date(d) => DatumRef::Date(*d),
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Exact comparison of an `i64` with an `f64`.
///
/// Converting the integer with `as f64` rounds above 2^53 and would make
/// `Eq` non-transitive (`Int(2^53+1)` would equal `Float(2^53)`), so the
/// comparison goes through the float's integral part instead. NaN sorts on
/// the side `total_cmp` puts it (after all numbers for positive NaN, before
/// for negative), keeping the total order consistent.
fn cmp_int_float(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        return if b.is_sign_negative() {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }
    // Beyond i64's range the answer is determined by sign.
    if b >= 9.3e18 {
        return Ordering::Less;
    }
    if b <= -9.3e18 {
        return Ordering::Greater;
    }
    let floor = b.floor();
    match a.cmp(&(floor as i64)) {
        Ordering::Equal => {
            if b > floor {
                Ordering::Less
            } else {
                Ordering::Equal
            }
        }
        other => other,
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    /// Total order used for keys and sorting: `NULL` sorts first; numeric
    /// variants compare by value across `Int`/`Float`; otherwise variants are
    /// ordered by rank.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Int(a), Datum::Float(b)) => cmp_int_float(*a, *b),
            (Datum::Float(a), Datum::Int(b)) => cmp_int_float(*b, *a).reverse(),
            _ => match self.variant_rank().cmp(&other.variant_rank()) {
                Ordering::Equal => match (self, other) {
                    (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
                    (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
                    (Datum::Float(a), Datum::Float(b)) => total_f64_cmp(*a, *b),
                    (Datum::Str(a), Datum::Str(b)) => a.as_ref().cmp(b.as_ref()),
                    (Datum::Date(a), Datum::Date(b)) => a.cmp(b),
                    _ => unreachable!("equal variant ranks imply equal variants"),
                },
                o => o,
            },
        }
    }
}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => state.write_u8(0),
            Datum::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally; hash both
            // through the float bit pattern when the int is exactly
            // representable, which covers every key value we generate.
            Datum::Int(v) => {
                state.write_u8(2);
                state.write_u64((*v as f64).to_bits());
            }
            Datum::Float(v) => {
                state.write_u8(2);
                state.write_u64(v.to_bits());
            }
            Datum::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            Datum::Date(d) => {
                state.write_u8(5);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v:.2}"),
            Datum::Str(s) => write!(f, "'{s}'"),
            Datum::Date(d) => {
                let (y, m, day) = date_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<i32> for Datum {
    fn from(v: i32) -> Self {
        Datum::Int(v as i64)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}

impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::str(v)
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(Arc::from(v.as_str()))
    }
}

/// Convert a `(year, month, day)` triple into days since 1970-01-01.
///
/// Valid for the proleptic Gregorian calendar; used by the TPC-H generator
/// and by tests to express the paper's date-range predicates.
pub fn days_from_date(year: i32, month: u32, day: u32) -> i32 {
    // Algorithm from Howard Hinnant's `days_from_civil`.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((month + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Inverse of [`days_from_date`].
pub fn date_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// Parse `"YYYY-MM-DD"` into a [`Datum::Date`]. Panics on malformed input;
/// intended for literals in tests and workload definitions.
pub fn date(s: &str) -> Datum {
    let mut parts = s.splitn(3, '-');
    let y: i32 = parts.next().expect("year").parse().expect("year");
    let m: u32 = parts.next().expect("month").parse().expect("month");
    let d: u32 = parts.next().expect("day").parse().expect("day");
    Datum::Date(days_from_date(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(Datum::Null.is_null());
        assert!(!Datum::Int(0).is_null());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
        assert_eq!(Datum::Null.sql_eq(&Datum::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_order_null_first() {
        let mut v = vec![Datum::Int(3), Datum::Null, Datum::Int(1)];
        v.sort();
        assert_eq!(v, vec![Datum::Null, Datum::Int(1), Datum::Int(3)]);
    }

    #[test]
    fn eq_and_hash_agree_for_int_float() {
        use std::collections::hash_map::DefaultHasher;
        let a = Datum::Int(7);
        let b = Datum::Float(7.0);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn huge_int_float_comparison_is_exact() {
        let big = (1i64 << 53) + 1;
        let as_float = Datum::Float((1u64 << 53) as f64);
        // `big as f64` would round down to 2^53; exact comparison must not.
        assert_ne!(Datum::Int(big), as_float.clone());
        assert_eq!(Datum::Int(1 << 53), as_float);
        assert_eq!(Datum::Int(big).cmp(&as_float), std::cmp::Ordering::Greater);
        // Transitivity probe: a == b and b == c implies a == c.
        let a = Datum::Int(1 << 53);
        let b = Datum::Float((1u64 << 53) as f64);
        let c = Datum::Int(1 << 53);
        assert!(a == b && b == c && a == c);
        // Fractional floats compare strictly between neighbours.
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Float(2.5)),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(
            Datum::Int(3).sql_cmp(&Datum::Float(2.5)),
            Some(std::cmp::Ordering::Greater)
        );
        // Out-of-range floats resolve by sign.
        assert_eq!(
            Datum::Int(i64::MAX).sql_cmp(&Datum::Float(1e19)),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(
            Datum::Int(i64::MIN).sql_cmp(&Datum::Float(-1e19)),
            Some(std::cmp::Ordering::Greater)
        );
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1994, 6, 1), (1998, 12, 31), (2000, 2, 29)] {
            let days = days_from_date(y, m, d);
            assert_eq!(date_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_date(1970, 1, 1), 0);
    }

    #[test]
    fn date_parse_and_display() {
        let d = date("1994-06-01");
        assert_eq!(format!("{d}"), "1994-06-01");
        assert!(date("1994-06-01").sql_cmp(&date("1994-12-31")).unwrap() == Ordering::Less);
    }

    #[test]
    fn string_datum_display_quotes() {
        assert_eq!(format!("{}", Datum::str("abc")), "'abc'");
    }

    #[test]
    fn data_type_of_null_is_none() {
        assert_eq!(Datum::Null.data_type(), None);
        assert_eq!(Datum::Int(1).data_type(), Some(DataType::Int));
    }

    /// Every `DatumRef` must hash to exactly the bytes its owned twin
    /// hashes to — columnar probes rely on hitting owned-key buckets.
    #[test]
    fn datum_ref_hash_and_eq_parity() {
        use crate::fxhash::fx_hash_one;
        let samples = vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Bool(false),
            Datum::Int(0),
            Datum::Int(-7),
            Datum::Int(1 << 53),
            Datum::Float(2.5),
            Datum::Float(-0.0),
            Datum::Float(f64::NAN),
            Datum::str(""),
            Datum::str("hello"),
            Datum::Date(9131),
        ];
        for a in &samples {
            assert_eq!(fx_hash_one(a), fx_hash_one(&a.as_ref()), "{a:?}");
            for b in &samples {
                assert_eq!(a == b, a.as_ref() == b.as_ref(), "{a:?} vs {b:?}");
                assert_eq!(a.cmp(b), a.as_ref().total_cmp(b.as_ref()), "{a:?} vs {b:?}");
                assert_eq!(
                    a.sql_cmp(b),
                    a.as_ref().sql_cmp(b.as_ref()),
                    "{a:?} vs {b:?}"
                );
            }
        }
        // Cross-type Int/Float equality carries over.
        assert_eq!(DatumRef::Int(2), DatumRef::Float(2.0));
        assert_eq!(DatumRef::Int(2), Datum::Float(2.0));
    }
}
