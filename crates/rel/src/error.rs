//! Error type for the data-model layer.

use std::fmt;

/// Errors raised by schema construction and row validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A column name was referenced that the schema does not contain.
    UnknownColumn { qualifier: String, name: String },
    /// Two columns with the same qualified name were added to one schema.
    DuplicateColumn { qualifier: String, name: String },
    /// A row's arity or a datum's type does not match the schema.
    TypeMismatch { detail: String },
    /// Binary encode/decode failure (durable log and snapshot codec).
    Codec { detail: String },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownColumn { qualifier, name } => {
                write!(f, "unknown column {qualifier}.{name}")
            }
            RelError::DuplicateColumn { qualifier, name } => {
                write!(f, "duplicate column {qualifier}.{name}")
            }
            RelError::TypeMismatch { detail } => write!(f, "type mismatch: {detail}"),
            RelError::Codec { detail } => write!(f, "codec error: {detail}"),
        }
    }
}

impl std::error::Error for RelError {}
