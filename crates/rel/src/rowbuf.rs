//! Flat wide-row batches.
//!
//! The executor's unit of data flow used to be `Vec<Row>` — a vector of
//! independently heap-allocated `Vec<Datum>` rows. Every operator that
//! produced rows paid one allocation per row, and iterating a batch chased a
//! pointer per row. [`RowBuf`] flattens a batch into **one contiguous
//! `Vec<Datum>`** with a fixed row stride (`width`), so producing a row is a
//! bump of the same backing vector and scanning a batch is a linear walk.
//! Rows are exposed as `&[Datum]` slices, which every existing helper
//! (`key_of`, `all_null`, predicate evaluation, …) already accepts.
//!
//! `width == 0` batches (legal for empty schemas) cannot carry a row count in
//! `data.len()`, so the count is tracked explicitly.

use crate::datum::Datum;
use crate::fxhash::FxHasher;
use crate::row::Row;
use std::hash::{Hash, Hasher};

/// A batch of rows stored in one contiguous `Vec<Datum>` with fixed stride.
#[derive(Debug, Clone, PartialEq)]
pub struct RowBuf {
    width: usize,
    len: usize,
    data: Vec<Datum>,
}

impl RowBuf {
    /// An empty batch of rows with `width` columns.
    pub fn new(width: usize) -> Self {
        RowBuf {
            width,
            len: 0,
            data: Vec::new(),
        }
    }

    /// An empty batch with room for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        RowBuf {
            width,
            len: 0,
            data: Vec::with_capacity(width * rows),
        }
    }

    /// Build from materialized rows (each must have exactly `width` datums).
    pub fn from_rows(width: usize, rows: &[Row]) -> Self {
        let mut buf = RowBuf::with_capacity(width, rows.len());
        for r in rows {
            buf.push_row(r);
        }
        buf
    }

    /// Number of columns per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Datum] {
        debug_assert!(i < self.len);
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Datum] {
        debug_assert!(i < self.len);
        &mut self.data[i * self.width..(i + 1) * self.width]
    }

    /// Append a row by cloning from a slice. Panics if the width mismatches.
    #[inline]
    pub fn push_row(&mut self, row: &[Datum]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.data.extend_from_slice(row);
        self.len += 1;
    }

    /// Append `width` nulls and return a mutable view of the fresh row, so
    /// producers can write columns in place without a scratch row.
    #[inline]
    pub fn push_null_row(&mut self) -> &mut [Datum] {
        self.data.resize(self.data.len() + self.width, Datum::Null);
        self.len += 1;
        let start = (self.len - 1) * self.width;
        &mut self.data[start..]
    }

    /// Append every row of `other` (must have the same width).
    pub fn append(&mut self, other: &RowBuf) {
        assert_eq!(other.width, self.width, "row width mismatch");
        self.data.extend_from_slice(&other.data);
        self.len += other.len;
    }

    /// Iterate rows as slices.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Datum]> + Clone {
        // `chunks_exact(0)` panics, so give the degenerate zero-width batch
        // a stride of 1 over an empty buffer padded per row.
        RowBufIter { buf: self, next: 0 }
    }

    /// Keep only rows whose flag is set, compacting in place — no per-row
    /// allocation, no datum clones (rows are moved by swapping).
    pub fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        let w = self.width;
        let mut dst = 0usize;
        for (src, &k) in keep.iter().enumerate() {
            if k {
                if src != dst && w > 0 {
                    let (lo, hi) = self.data.split_at_mut(src * w);
                    lo[dst * w..dst * w + w].swap_with_slice(&mut hi[..w]);
                }
                dst += 1;
            }
        }
        self.truncate_rows(dst);
    }

    /// Drop all rows past `keep`.
    pub fn truncate_rows(&mut self, keep: usize) {
        if keep < self.len {
            self.data.truncate(keep * self.width);
            self.len = keep;
        }
    }

    /// Convert into the legacy `Vec<Row>` shape (one allocation per row) —
    /// only for API boundaries that still speak `Vec<Row>`.
    pub fn into_rows(self) -> Vec<Row> {
        let width = self.width;
        let mut out = Vec::with_capacity(self.len);
        if width == 0 {
            out.resize(self.len, Vec::new());
            return out;
        }
        let mut data = self.data.into_iter();
        for _ in 0..self.len {
            out.push(data.by_ref().take(width).collect());
        }
        out
    }

    /// Clone into `Vec<Row>` without consuming the batch.
    pub fn to_rows(&self) -> Vec<Row> {
        self.iter().map(|r| r.to_vec()).collect()
    }
}

/// Iterator over the rows of a [`RowBuf`] as borrowed slices.
#[derive(Clone)]
pub struct RowBufIter<'a> {
    buf: &'a RowBuf,
    next: usize,
}

impl<'a> Iterator for RowBufIter<'a> {
    type Item = &'a [Datum];

    #[inline]
    fn next(&mut self) -> Option<&'a [Datum]> {
        if self.next < self.buf.len {
            let r = self.buf.row(self.next);
            self.next += 1;
            Some(r)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.buf.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowBufIter<'_> {}

impl<'a> IntoIterator for &'a RowBuf {
    type Item = &'a [Datum];
    type IntoIter = RowBufIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        RowBufIter { buf: self, next: 0 }
    }
}

/// Hash the key columns of a row **in place** with the fast deterministic
/// hasher — no key vector is materialized.
///
/// Matches `fx_hash_one(&key_of(row, cols))` exactly: `Vec<Datum>` and
/// `[Datum]` share the slice `Hash` impl (length prefix then elements), so
/// this hash can probe any fx-hashed map keyed by owned `Vec<Datum>` keys.
#[inline]
pub fn key_hash(row: &[Datum], cols: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    cols.len().hash(&mut h);
    for &c in cols {
        row[c].hash(&mut h);
    }
    h.finish()
}

/// [`key_hash`] over an *accessor* instead of a row slice: hashes the key
/// columns produced by `get(col)` with the same deterministic stream, so a
/// columnar row (which cannot yield `&[Datum]`) probes the same buckets.
/// `DatumRef`'s `Hash` impl is byte-identical to `Datum`'s.
#[inline]
pub fn key_hash_with<'a>(cols: &[usize], get: impl Fn(usize) -> crate::DatumRef<'a>) -> u64 {
    let mut h = FxHasher::default();
    cols.len().hash(&mut h);
    for &c in cols {
        get(c).hash(&mut h);
    }
    h.finish()
}

/// True iff the key columns of `row` equal `key` element-wise (plain `Eq`,
/// the same equivalence hash tables use — *not* SQL null semantics).
#[inline]
pub fn key_eq(row: &[Datum], cols: &[usize], key: &[Datum]) -> bool {
    cols.len() == key.len() && cols.iter().zip(key).all(|(&c, k)| row[c] == *k)
}

/// True iff two rows agree on their respective key columns.
#[inline]
pub fn key_eq_rows(a: &[Datum], a_cols: &[usize], b: &[Datum], b_cols: &[usize]) -> bool {
    a_cols.len() == b_cols.len() && a_cols.iter().zip(b_cols).all(|(&ca, &cb)| a[ca] == b[cb])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::fx_hash_one;
    use crate::row::key_of;

    fn d(i: i64) -> Datum {
        Datum::Int(i)
    }

    #[test]
    fn push_and_view() {
        let mut b = RowBuf::new(3);
        b.push_row(&[d(1), d(2), d(3)]);
        b.push_row(&[d(4), d(5), d(6)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[d(4), d(5), d(6)]);
        let rows: Vec<_> = b.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[d(1), d(2), d(3)]);
        b.truncate_rows(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.to_rows(), vec![vec![d(1), d(2), d(3)]]);
    }

    #[test]
    fn push_null_row_in_place_write() {
        let mut b = RowBuf::new(2);
        let r = b.push_null_row();
        r[1] = d(9);
        assert_eq!(b.row(0), &[Datum::Null, d(9)]);
    }

    #[test]
    fn zero_width_rows_are_counted() {
        let mut b = RowBuf::new(0);
        b.push_row(&[]);
        b.push_row(&[]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.iter().count(), 2);
        assert_eq!(b.into_rows(), vec![Vec::<Datum>::new(), Vec::new()]);
    }

    #[test]
    fn retain_compacts_in_place() {
        let mut b = RowBuf::from_rows(
            2,
            &[
                vec![d(1), d(2)],
                vec![d(3), d(4)],
                vec![d(5), d(6)],
                vec![d(7), d(8)],
            ],
        );
        b.retain_rows(&[false, true, false, true]);
        assert_eq!(b.to_rows(), vec![vec![d(3), d(4)], vec![d(7), d(8)]]);
        let mut empty = RowBuf::new(0);
        empty.push_row(&[]);
        empty.push_row(&[]);
        empty.retain_rows(&[false, true]);
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn round_trip_rows() {
        let rows = vec![vec![d(1), d(2)], vec![d(3), d(4)], vec![d(5), d(6)]];
        let b = RowBuf::from_rows(2, &rows);
        assert_eq!(b.to_rows(), rows);
        assert_eq!(b.into_rows(), rows);
    }

    #[test]
    fn key_hash_matches_owned_key_hash() {
        let row = vec![d(10), Datum::str("abc"), d(30), Datum::Null];
        for cols in [&[0usize, 2][..], &[1][..], &[3, 0][..], &[][..]] {
            assert_eq!(
                key_hash(&row, cols),
                fx_hash_one(&key_of(&row, cols)),
                "cols {cols:?}"
            );
        }
    }

    #[test]
    fn key_eq_checks() {
        let row = vec![d(1), d(2), d(3)];
        assert!(key_eq(&row, &[2, 0], &[d(3), d(1)]));
        assert!(!key_eq(&row, &[2, 0], &[d(3), d(2)]));
        assert!(!key_eq(&row, &[2], &[d(3), d(1)]));
        let other = vec![d(3), d(1)];
        assert!(key_eq_rows(&row, &[2, 0], &other, &[0, 1]));
        assert!(!key_eq_rows(&row, &[0, 2], &other, &[0, 1]));
    }
}
