//! Token-level source scanning substrate, shared by `xtask`'s lint gate and
//! the concurrency checks in this crate.
//!
//! The scanner masks string/char literals and comments (preserving newlines
//! so line numbers survive), tokenizes what remains into identifier and
//! single-character punct tokens, and records per-line allow directives
//! (e.g. `lint:allow(id)` / `concheck:allow(id)`) plus the contents of
//! string literals (so lints that inspect failure messages can see them
//! even though the token stream cannot).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Result of masking one source file.
pub struct Masked {
    /// Source with comments and literals blanked, newlines preserved.
    pub text: String,
    /// Per-line allow-directive ids (`allows[line]` is 0-based).
    pub allows: Vec<Vec<String>>,
    /// `(line, content)` of every string literal, 0-based lines.
    pub strings: Vec<(usize, String)>,
}

impl Masked {
    /// Is `id` allowed on `line` (0-based) or the line directly above?
    pub fn allowed(&self, line: usize, id: &str) -> bool {
        let has = |l: usize| {
            self.allows
                .get(l)
                .is_some_and(|v| v.iter().any(|a| a == id))
        };
        has(line) || (line > 0 && has(line - 1))
    }
}

/// Pull `<directive><id>[, <id>...])` directives out of a comment and record
/// them against the line each directive appears on. `directive` includes the
/// opening paren, e.g. `"concheck:allow("`.
fn collect_allows(
    comment: &str,
    start_line: usize,
    directive: &str,
    allows: &mut Vec<Vec<String>>,
) {
    let mut search = 0;
    while let Some(pos) = comment[search..].find(directive) {
        let abs = search + pos;
        let line = start_line + comment[..abs].bytes().filter(|&b| b == b'\n').count();
        let rest = &comment[abs + directive.len()..];
        if let Some(close) = rest.find(')') {
            while allows.len() <= line {
                allows.push(Vec::new());
            }
            for id in rest[..close].split(',') {
                allows[line].push(id.trim().to_string());
            }
        }
        search = abs + 1;
    }
}

/// Blank out comments and string/char literals, preserving newlines. The
/// `directive` names the allow marker to harvest from comments (pass e.g.
/// `"lint:allow("`).
pub fn mask(src: &str, directive: &str) -> Masked {
    let b = src.as_bytes();
    let n = b.len();
    let mut out: Vec<u8> = Vec::with_capacity(n);
    let mut allows: Vec<Vec<String>> = vec![Vec::new()];
    let mut strings: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    // Emit the byte range [start, end) as blanks, keeping newlines.
    macro_rules! blank {
        ($start:expr, $end:expr) => {
            for &bb in &b[$start..$end] {
                if bb == b'\n' {
                    out.push(b'\n');
                    line += 1;
                    if allows.len() <= line {
                        allows.push(Vec::new());
                    }
                } else {
                    out.push(b' ');
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        // Line comment (also doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            collect_allows(&src[start..i], line, directive, &mut allows);
            blank!(start, i);
            continue;
        }
        // Block comment, nested per Rust.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            collect_allows(&src[start..i], start_line, directive, &mut allows);
            blank!(start, i);
            continue;
        }
        // Raw string literal: optional `b`, then `r`, hashes, quote.
        if c == b'r' || (c == b'b' && i + 1 < n && b[i + 1] == b'r') {
            let r_pos = if c == b'b' { i + 1 } else { i };
            let mut k = r_pos + 1;
            let mut hashes = 0usize;
            while k < n && b[k] == b'#' {
                hashes += 1;
                k += 1;
            }
            if k < n && b[k] == b'"' {
                let start = i;
                let start_line = line;
                let body_start = k + 1;
                k += 1;
                let mut body_end = k;
                'raw: while k < n {
                    if b[k] == b'"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && b[k + 1 + h] == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            body_end = k;
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                strings.push((start_line, src[body_start..body_end.min(n)].to_string()));
                i = k;
                blank!(start, i);
                continue;
            }
        }
        // Ordinary string literal (a leading `b` stays an ordinary token).
        if c == b'"' {
            let start = i;
            let start_line = line;
            i += 1;
            let body_start = i;
            while i < n {
                if b[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    break;
                }
                i += 1;
            }
            let body_end = i.min(n);
            if i < n {
                i += 1; // past the closing quote
            }
            strings.push((start_line, src[body_start..body_end].to_string()));
            blank!(start, i.min(n));
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal, e.g. '\n', '\'', '\u{41}'.
                let start = i;
                i += 2;
                if i < n {
                    i += 1;
                }
                while i < n && b[i] != b'\'' && b[i] != b'\n' {
                    i += 1;
                }
                if i < n && b[i] == b'\'' {
                    i += 1;
                }
                blank!(start, i);
                continue;
            }
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                && !(i + 2 < n && b[i + 2] == b'\'');
            if is_lifetime {
                out.push(c);
                i += 1;
                continue;
            }
            // Plain (possibly multi-byte) char literal.
            let start = i;
            i += 1;
            while i < n && b[i] != b'\'' && b[i] != b'\n' {
                i += 1;
            }
            if i < n && b[i] == b'\'' {
                i += 1;
            }
            blank!(start, i);
            continue;
        }
        if c == b'\n' {
            out.push(b'\n');
            line += 1;
            if allows.len() <= line {
                allows.push(Vec::new());
            }
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    let text = String::from_utf8(out).expect("masking preserves UTF-8");
    Masked {
        text,
        allows,
        strings,
    }
}

/// One token of masked source.
pub struct Tok<'a> {
    pub text: &'a str,
    /// 0-based line number.
    pub line: usize,
}

/// Split masked source into identifier and single-character punct tokens.
pub fn tokenize(masked: &str) -> Vec<Tok<'_>> {
    let b = masked.as_bytes();
    let mut toks = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if ident(c) {
            let s = i;
            while i < b.len() && ident(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                text: &masked[s..i],
                line,
            });
            continue;
        }
        toks.push(Tok {
            text: &masked[i..i + 1],
            line,
        });
        i += 1;
    }
    toks
}

/// 0-based line of a byte offset in masked text.
pub fn line_of(masked: &str, byte: usize) -> usize {
    masked.as_bytes()[..byte.min(masked.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// Per-line flags marking `#[cfg(test)]` brace regions (the attribute line
/// through the matching closing brace).
pub fn test_lines(masked: &str) -> Vec<bool> {
    let nlines = masked.bytes().filter(|&b| b == b'\n').count() + 1;
    let mut flags = vec![false; nlines];
    let b = masked.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = masked[search..].find("#[cfg(test)]") {
        let abs = search + pos;
        let start_line = line_of(masked, abs);
        let mut i = abs + "#[cfg(test)]".len();
        while i < b.len() && b[i] != b'{' {
            i += 1;
        }
        let mut depth = 0usize;
        while i < b.len() {
            match b[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let end_line = line_of(masked, i).min(nlines - 1);
        for flag in flags.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        search = abs + 1;
    }
    flags
}

/// Recursively collect `.rs` files under `dir`, skipping `target/` and
/// `.git/`.
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        let name = p.file_name().and_then(|s| s.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Read every workspace `.rs` file under `crates/` and `src/` of `root` as
/// `(workspace-relative path, source)` pairs, ordered by path.
pub fn read_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, fs::read_to_string(f)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_literals_preserving_lines() {
        let src = "// a comment\nlet s = \"Mutex lock()\";\nlet c = 'x';\n";
        let m = mask(src, "concheck:allow(");
        assert_eq!(m.text.lines().count(), src.lines().count());
        assert!(!m.text.contains("comment"));
        assert!(!m.text.contains("Mutex"));
        assert_eq!(m.strings, vec![(1, "Mutex lock()".to_string())]);
    }

    #[test]
    fn allow_directives_are_per_line_and_prefix_scoped() {
        let src = "// concheck:allow(atomic-ordering) counter only\nx.load(Ordering::Relaxed);\n// lint:allow(cast)\n";
        let m = mask(src, "concheck:allow(");
        assert!(m.allowed(1, "atomic-ordering"));
        assert!(!m.allowed(2, "cast"), "foreign directives are ignored");
    }

    #[test]
    fn raw_strings_are_collected_and_masked() {
        let src = "let s = r#\"seed {s}\"#;\n";
        let m = mask(src, "concheck:allow(");
        assert_eq!(m.strings, vec![(0, "seed {s}".to_string())]);
        assert!(!m.text.contains("seed"));
    }

    #[test]
    fn tokenizer_splits_idents_and_puncts() {
        let m = mask("a.lock()", "concheck:allow(");
        let toks = tokenize(&m.text);
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["a", ".", "lock", "(", ")"]);
    }

    #[test]
    fn test_lines_cover_cfg_test_regions() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {}\n}\nfn h() {}\n";
        let m = mask(src, "concheck:allow(");
        let flags = test_lines(&m.text);
        assert!(!flags[0]);
        assert!(flags[1] && flags[2] && flags[3] && flags[4]);
        assert!(!flags[5]);
    }
}
