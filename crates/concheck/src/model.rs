//! Syntactic model of one masked source file: function boundaries, `impl`
//! blocks, lock-acquisition sites and guard live ranges.
//!
//! Everything here is token-level and deliberately approximate — the same
//! trade the `xtask` lint gate makes. The model errs on the side of seeing
//! *more* acquisitions and *longer* guard ranges than the compiler would,
//! which is the conservative direction for deadlock analysis, and every
//! check downstream has a per-site `// concheck:allow(id)` escape hatch for
//! the false positives that conservatism buys.

use crate::scan::Tok;

/// One function in a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body: `(open brace index, close brace index)`.
    pub body: (usize, usize),
    /// 0-based line range `(first, last)` of the whole item.
    pub lines: (usize, usize),
    /// Names of parameters with a callable (`Fn`/`FnMut`/`FnOnce`) type,
    /// directly (`impl Fn(..)`) or via a generic bound (`F: Fn(..)`).
    pub callback_params: Vec<String>,
}

/// One syntactic lock acquisition: `recv.lock()`, `recv.read()` or
/// `recv.write()` with no arguments.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock class: the final receiver segment (`self.inner.lock()` → `inner`)
    /// or the `impl` type name for a bare `self.lock()`.
    pub class: String,
    /// Which method was matched: `lock`, `read`, or `write`.
    pub method: &'static str,
    /// Token index of the method-name token.
    pub tok: usize,
    /// 0-based line of the acquisition.
    pub line: usize,
    /// Token index one past the guard's live range: end of statement for a
    /// temporary, end of the enclosing block (or `drop(guard)`) for a
    /// `let`-bound guard.
    pub live_end: usize,
    /// The `let`-bound guard variable, when there is one.
    pub guard_var: Option<String>,
}

/// The per-file model consumed by the checks.
pub struct FileModel {
    /// Brace depth *before* each token.
    pub depth: Vec<usize>,
    pub fns: Vec<FnInfo>,
    pub acquires: Vec<Acquire>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "fn", "let", "in", "move", "mut",
    "ref", "pub", "use", "mod", "impl", "struct", "enum", "trait", "where", "const", "static",
    "type", "unsafe", "as", "break", "continue", "crate", "super", "Self", "self", "dyn", "box",
    "async", "await",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Brace depth before each token.
fn depths(toks: &[Tok<'_>]) -> Vec<usize> {
    let mut out = Vec::with_capacity(toks.len());
    let mut d = 0usize;
    for t in toks {
        out.push(d);
        match t.text {
            "{" => d += 1,
            "}" => d = d.saturating_sub(1),
            _ => {}
        }
    }
    out
}

/// Index one past the matching closer for the opener at `open` (`(`/`)` or
/// `{`/`}`). Returns `toks.len()` when unbalanced.
fn skip_matched(toks: &[Tok<'_>], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].text == o {
            depth += 1;
        } else if toks[i].text == c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Index one past the `>` matching the `<` at `open`, treating the `>` of a
/// `->` arrow as plain punctuation.
fn skip_generics(toks: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text {
            "<" => depth += 1,
            ">" if i > 0 && toks[i - 1].text == "-" => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Do `type_toks` name a callable, directly or through `fn_bounded` generics?
fn is_callable_type(type_toks: &[&str], fn_bounded: &[String]) -> bool {
    if type_toks
        .iter()
        .any(|t| matches!(*t, "Fn" | "FnMut" | "FnOnce"))
    {
        return true;
    }
    // A bare generic parameter (possibly behind `&`/`mut`).
    let idents: Vec<&&str> = type_toks
        .iter()
        .filter(|t| {
            t.chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        })
        .collect();
    idents.len() == 1 && fn_bounded.iter().any(|g| g == *idents[0])
}

/// Collect `ident: ... Fn...`-bounded generic names from a generics or
/// `where` token region.
fn fn_bounded_generics(toks: &[Tok<'_>], range: std::ops::Range<usize>, out: &mut Vec<String>) {
    let mut i = range.start;
    while i < range.end {
        if toks[i].text == ":"
            && i > range.start
            && !is_keyword(toks[i - 1].text)
            && toks[i - 1]
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            // Scan the bound until a top-level `,` or the region end.
            let name = toks[i - 1].text.to_string();
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut paren = 0i32;
            while j < range.end {
                match toks[j].text {
                    "<" => angle += 1,
                    ">" if toks[j - 1].text != "-" => angle -= 1,
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "," if angle <= 0 && paren <= 0 => break,
                    "Fn" | "FnMut" | "FnOnce" if !out.contains(&name) => {
                        out.push(name.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Segment every `fn` item (including nested ones) out of the token stream.
fn functions(toks: &[Tok<'_>]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        if toks[i].text != "fn" || i + 1 >= n {
            i += 1;
            continue;
        }
        let name_tok = i + 1;
        let name = toks[name_tok].text;
        if !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            i += 1;
            continue;
        }
        let mut j = name_tok + 1;
        let mut fn_bounded: Vec<String> = Vec::new();
        if j < n && toks[j].text == "<" {
            let end = skip_generics(toks, j);
            fn_bounded_generics(toks, j + 1..end.saturating_sub(1), &mut fn_bounded);
            j = end;
        }
        if j >= n || toks[j].text != "(" {
            i = name_tok + 1;
            continue;
        }
        let params_open = j;
        let params_end = skip_matched(toks, j, "(", ")"); // one past `)`
                                                          // Return type / where clause up to the body `{` or a decl `;`.
        let mut k = params_end;
        let mut where_start = None;
        while k < n && toks[k].text != "{" && toks[k].text != ";" {
            match toks[k].text {
                "(" => {
                    k = skip_matched(toks, k, "(", ")");
                    continue;
                }
                "<" if toks[k - 1].text != "-" && toks[k - 1].text != "<" => {
                    k = skip_generics(toks, k);
                    continue;
                }
                "where" => where_start = Some(k + 1),
                _ => {}
            }
            k += 1;
        }
        if k >= n || toks[k].text == ";" {
            i = name_tok + 1;
            continue;
        }
        if let Some(ws) = where_start {
            fn_bounded_generics(toks, ws..k, &mut fn_bounded);
        }
        let body_open = k;
        let body_close = skip_matched(toks, body_open, "{", "}").saturating_sub(1);

        // Parameter names with callable types.
        let mut callback_params = Vec::new();
        {
            let mut p = params_open + 1;
            let mut seg_start = p;
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut brack = 0i32;
            while p < params_end {
                let t = toks[p].text;
                let closing_param_list = p + 1 == params_end;
                let top_comma = t == "," && angle <= 0 && paren <= 0 && brack <= 0;
                if top_comma || closing_param_list {
                    let seg_end = if top_comma { p } else { p.max(seg_start) };
                    param_callback(toks, seg_start..seg_end, &fn_bounded, &mut callback_params);
                    seg_start = p + 1;
                }
                match t {
                    "<" => angle += 1,
                    ">" if toks[p - 1].text != "-" => angle -= 1,
                    "(" => paren += 1,
                    ")" if !closing_param_list => paren -= 1,
                    "[" => brack += 1,
                    "]" => brack -= 1,
                    _ => {}
                }
                p += 1;
            }
        }

        out.push(FnInfo {
            name: name.to_string(),
            fn_tok: i,
            body: (body_open, body_close),
            lines: (toks[i].line, toks[body_close.min(n - 1)].line),
            callback_params,
        });
        // Continue scanning *inside* the body so nested fns are found too.
        i = name_tok + 1;
    }
    out
}

/// If the parameter segment `name: TYPE` has a callable TYPE, record `name`.
fn param_callback(
    toks: &[Tok<'_>],
    seg: std::ops::Range<usize>,
    fn_bounded: &[String],
    out: &mut Vec<String>,
) {
    let Some(colon) = (seg.start..seg.end).find(|&i| toks[i].text == ":") else {
        return;
    };
    if colon == seg.start {
        return;
    }
    let name = toks[colon - 1].text;
    if is_keyword(name)
        || !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        return;
    }
    let type_toks: Vec<&str> = (colon + 1..seg.end).map(|i| toks[i].text).collect();
    if is_callable_type(&type_toks, fn_bounded) {
        out.push(name.to_string());
    }
}

/// `impl` block spans with the implemented type name, for resolving a bare
/// `self.lock()` to a class.
fn impl_spans(toks: &[Tok<'_>]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        if toks[i].text != "impl" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < n && toks[j].text == "<" {
            j = skip_generics(toks, j);
        }
        // Walk to the body `{`, remembering the last plain ident seen (the
        // implemented type for both `impl T` and `impl Tr for T`).
        let mut name: Option<&str> = None;
        while j < n && toks[j].text != "{" {
            let t = toks[j].text;
            if t == "<" && toks[j - 1].text != "-" {
                j = skip_generics(toks, j);
                continue;
            }
            if !is_keyword(t)
                && t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                name = Some(t);
            }
            j += 1;
        }
        if j >= n {
            break;
        }
        let close = skip_matched(toks, j, "{", "}").saturating_sub(1);
        if let Some(nm) = name {
            out.push((nm.to_string(), j, close));
        }
        i = j + 1;
    }
    out
}

/// Walk the receiver chain backwards from the `.` before the method token,
/// returning the chain segments innermost-last (`self.inner.lock()` →
/// `["self", "inner"]`).
fn receiver_chain<'a>(toks: &'a [Tok<'a>], dot: usize) -> Vec<&'a str> {
    let mut chain = Vec::new();
    let mut i = dot; // index of the `.` token
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        if prev.text == ")" {
            // A call result, e.g. `self.registry().lock()`: attribute the
            // class to the called method's name.
            let mut depth = 0usize;
            let mut k = i - 1;
            loop {
                match toks[k].text {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return chain;
                }
                k -= 1;
            }
            if k > 0 {
                let name = toks[k - 1].text;
                if !is_keyword(name)
                    && name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                {
                    chain.push(name);
                }
            }
            break;
        }
        if !prev
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
            || prev.text.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            break;
        }
        chain.push(prev.text);
        if i >= 2 && toks[i - 2].text == "." {
            i -= 2;
        } else {
            break;
        }
    }
    chain.reverse();
    chain
}

/// Extract every acquisition site with its guard live range.
fn acquires(toks: &[Tok<'_>], depth: &[usize], impls: &[(String, usize, usize)]) -> Vec<Acquire> {
    let n = toks.len();
    let mut out = Vec::new();
    for i in 0..n {
        if toks[i].text != "." || i + 3 >= n {
            continue;
        }
        let method = match toks[i + 1].text {
            "lock" => "lock",
            "read" => "read",
            "write" => "write",
            _ => continue,
        };
        if toks[i + 2].text != "(" || toks[i + 3].text != ")" {
            continue;
        }
        let chain = receiver_chain(toks, i);
        let class = match chain.as_slice() {
            [] => continue,
            ["self"] => impls
                .iter()
                .rev()
                .find(|(_, open, close)| *open <= i && i <= *close)
                .map(|(nm, _, _)| nm.clone())
                .unwrap_or_else(|| "self".to_string()),
            rest => {
                let last = rest[rest.len() - 1];
                if last == "self" {
                    continue;
                }
                last.to_string()
            }
        };

        // Guard binding: `let [mut] g = <chain>.<method>()...`.
        let chain_start = chain_start_tok(toks, i);
        let mut guard_var = None;
        if chain_start >= 3 && toks[chain_start - 1].text == "=" {
            let g = toks[chain_start - 2].text;
            let kw = toks[chain_start - 3].text;
            let kw2 = if chain_start >= 4 {
                toks[chain_start - 4].text
            } else {
                ""
            };
            if (kw == "let" || (kw == "mut" && kw2 == "let"))
                && g.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                guard_var = Some(g.to_string());
            }
        }

        let d = depth[i];
        let live_end = match &guard_var {
            Some(g) => {
                // Until the enclosing block closes or the guard is dropped.
                // `depth[j]` is the depth *before* token `j`, so the
                // enclosing `}` is the first one at depth <= d.
                let mut end = n;
                for (j, t) in toks.iter().enumerate().skip(i + 4) {
                    if t.text == "}" && depth[j] <= d {
                        end = j;
                        break;
                    }
                    if t.text == "drop"
                        && j + 2 < n
                        && toks[j + 1].text == "("
                        && toks[j + 2].text == g.as_str()
                    {
                        end = j;
                        break;
                    }
                }
                end
            }
            None => {
                // Temporary: until the end of the statement.
                let mut end = n;
                for (j, t) in toks.iter().enumerate().skip(i + 4) {
                    if (t.text == ";" && depth[j] == d) || (t.text == "}" && depth[j] < d) {
                        end = j;
                        break;
                    }
                }
                end
            }
        };
        out.push(Acquire {
            class,
            method,
            tok: i + 1,
            line: toks[i + 1].line,
            live_end,
            guard_var,
        });
    }
    out
}

/// First token of the receiver chain feeding the `.` at `dot`.
fn chain_start_tok(toks: &[Tok<'_>], dot: usize) -> usize {
    let mut i = dot;
    loop {
        if i == 0 {
            return 0;
        }
        let prev = &toks[i - 1];
        if !prev
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return i;
        }
        if i >= 2 && toks[i - 2].text == "." {
            i -= 2;
        } else {
            return i - 1;
        }
    }
}

/// Build the full model for one masked, tokenized file.
pub fn build(toks: &[Tok<'_>]) -> FileModel {
    let depth = depths(toks);
    let impls = impl_spans(toks);
    let fns = functions(toks);
    let acq = acquires(toks, &depth, &impls);
    FileModel {
        depth,
        fns,
        acquires: acq,
    }
}

impl FileModel {
    /// Innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= idx && idx <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{mask, tokenize};

    fn model(src: &str) -> (Vec<String>, Vec<(String, Option<String>)>) {
        let m = mask(src, "concheck:allow(");
        let toks = tokenize(&m.text);
        let fm = build(&toks);
        (
            fm.fns.iter().map(|f| f.name.clone()).collect(),
            fm.acquires
                .iter()
                .map(|a| (a.class.clone(), a.guard_var.clone()))
                .collect(),
        )
    }

    #[test]
    fn functions_and_acquires_are_found() {
        let src = "impl Reg {\n    fn go(&self) {\n        let g = self.inner.lock();\n        other.read();\n    }\n}\n";
        let (fns, acq) = model(src);
        assert_eq!(fns, vec!["go"]);
        assert_eq!(
            acq,
            vec![
                ("inner".to_string(), Some("g".to_string())),
                ("other".to_string(), None),
            ]
        );
    }

    #[test]
    fn bare_self_lock_resolves_to_impl_type() {
        let src = "impl SnapshotRegistry {\n    fn stats(&self) { let inner = self.lock(); }\n}\n";
        let (_, acq) = model(src);
        assert_eq!(acq[0].0, "SnapshotRegistry");
        assert_eq!(acq[0].1.as_deref(), Some("inner"));
    }

    #[test]
    fn argful_read_write_are_not_acquires() {
        let src = "fn f(w: &mut W) { w.write(buf); r.read(&mut buf); }\n";
        let (_, acq) = model(src);
        assert!(acq.is_empty(), "{acq:?}");
    }

    #[test]
    fn callback_params_direct_and_generic() {
        let src = "fn f<F: FnMut(usize) -> bool>(a: u32, cb: impl Fn(), g: F) {}\nfn h(x: u32) where { }\n";
        let m = mask(src, "concheck:allow(");
        let toks = tokenize(&m.text);
        let fm = build(&toks);
        assert_eq!(fm.fns[0].callback_params, vec!["cb", "g"]);
        assert!(fm.fns[1].callback_params.is_empty());
    }

    #[test]
    fn guard_live_range_ends_at_block_or_drop() {
        let src = "fn f() {\n    { let g = m.lock(); use1(); }\n    after();\n    let h = m2.lock();\n    drop(h);\n    tail();\n}\n";
        let m = mask(src, "concheck:allow(");
        let toks = tokenize(&m.text);
        let fm = build(&toks);
        let a = &fm.acquires[0];
        // use1 is inside the range, after() is not.
        let use1 = toks.iter().position(|t| t.text == "use1").unwrap();
        let after = toks.iter().position(|t| t.text == "after").unwrap();
        assert!(a.tok < use1 && use1 < a.live_end);
        assert!(after >= a.live_end);
        let b = &fm.acquires[1];
        let tail = toks.iter().position(|t| t.text == "tail").unwrap();
        assert!(tail >= b.live_end, "drop(h) ends the range");
    }

    #[test]
    fn call_result_receiver_uses_method_name() {
        let src = "fn f() { self.registry().lock(); }\n";
        let (_, acq) = model(src);
        assert_eq!(acq[0].0, "registry");
    }
}
