//! `ojv-concheck`: static concurrency soundness checks for the workspace.
//!
//! The same way `ojv-analysis` makes plan invariants machine-checked, this
//! crate makes concurrency invariants machine-checked. It is a token-level,
//! dependency-free pass (the substrate in [`scan`] is shared with the
//! `xtask` lint gate) that:
//!
//! * inventories every syntactic lock acquisition (`.lock()` / `.read()` /
//!   `.write()` with no arguments) and derives a **lock-acquisition-order
//!   graph** from guard live ranges, propagated across the workspace call
//!   graph — a cycle is a potential deadlock (`lock-order-cycle`);
//! * bans lock acquisition inside spawned worker closures — the morsel and
//!   batch pools are designed to coordinate through atomics and in-order
//!   merge, not locks (`lock-in-worker`);
//! * bans holding a guard across a call to a caller-supplied callback,
//!   which would let user code re-enter the lock or block commit
//!   (`guard-across-callback`);
//! * bans `Ordering::Relaxed` atomics outside per-site justification —
//!   every relaxed site must argue why it is sound (`atomic-ordering`).
//!
//! Every check is suppressible per site with `// concheck:allow(id)` on the
//! offending line or the line above, and `#[cfg(test)]` regions are exempt.
//! Violations carry a stable invariant id plus `file:line`, exactly like
//! `PlanViolation` in `ojv-analysis`.

pub mod model;
pub mod scan;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::Path;

use model::FileModel;
use scan::{Masked, Tok};

/// One statically enforced concurrency invariant.
pub struct InvariantDef {
    /// Stable id, used in reports and `concheck:allow(..)` directives.
    pub id: &'static str,
    pub desc: &'static str,
    /// Where the invariant applies, for `--list` output.
    pub scope: &'static str,
}

/// All invariants, sorted by id (the `--list` golden test relies on this).
pub const INVARIANTS: [InvariantDef; 4] = [
    InvariantDef {
        id: "atomic-ordering",
        desc: "atomic ops must use SeqCst or Acquire/Release; each Relaxed site needs a concheck:allow with a reason",
        scope: "crates/*/src, src (non-test code)",
    },
    InvariantDef {
        id: "guard-across-callback",
        desc: "a lock guard must not be held across a call to a caller-supplied callback",
        scope: "crates/*/src, src (non-test code)",
    },
    InvariantDef {
        id: "lock-in-worker",
        desc: "no lock acquisition inside spawned worker closures; pools coordinate via atomics and in-order merge",
        scope: "crates/*/src, src (non-test code)",
    },
    InvariantDef {
        id: "lock-order-cycle",
        desc: "the workspace lock-acquisition-order graph must be acyclic (guard nesting + call-edge propagation)",
        scope: "workspace-wide graph over non-test code",
    },
];

/// A concurrency-invariant violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub invariant: &'static str,
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.invariant, self.detail
        )
    }
}

/// One edge of the lock-acquisition-order graph: while a `from`-class guard
/// is live, a `to`-class lock is acquired (directly or through a call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    /// 1-based line of the inner acquisition (or the propagating call).
    pub line: usize,
    /// `true` when the edge came from call-graph propagation rather than a
    /// lexically nested acquisition.
    pub via_call: bool,
}

/// Everything extracted from one file that the cross-file passes need,
/// owning its data so token lifetimes stay file-local.
struct Extracted {
    path: String,
    /// Per function: (name, acquires, calls) with token positions.
    fns: Vec<ExtractedFn>,
}

struct ExtractedFn {
    name: String,
    /// (class, method, 0-based line, tok, live_end) — test/allowed sites
    /// already filtered out for graph purposes.
    acquires: Vec<(String, &'static str, usize, usize, usize)>,
    /// (callee name, tok, 0-based line) for every syntactic call in the body.
    calls: Vec<(String, usize, usize)>,
}

/// Per-file checks plus extraction for the cross-file graph pass.
fn check_file(
    path: &str,
    masked: &Masked,
    toks: &[Tok<'_>],
    tests: &[bool],
    fm: &FileModel,
    out: &mut Vec<Violation>,
) -> Extracted {
    let exempt = |line: usize, id: &str| {
        tests.get(line).copied().unwrap_or(false) || masked.allowed(line, id)
    };

    // atomic-ordering: flag exactly `Ordering::Relaxed`. SeqCst, Acquire,
    // Release and AcqRel are allowed, and `cmp::Ordering` variants never
    // match this pattern.
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].text == "Ordering"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && toks[i + 3].text == "Relaxed"
        {
            let line = toks[i + 3].line;
            if !exempt(line, "atomic-ordering") {
                out.push(Violation {
                    invariant: "atomic-ordering",
                    file: path.to_string(),
                    line: line + 1,
                    detail: "Ordering::Relaxed without a per-site justification".to_string(),
                });
            }
        }
    }

    // lock-in-worker: any acquisition lexically inside the argument of a
    // `spawn(..)` call.
    let mut worker_spans: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].text == "spawn" && toks[i + 1].text == "(" {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            worker_spans.push((i + 1, j));
        }
    }
    for a in &fm.acquires {
        if worker_spans.iter().any(|&(s, e)| s < a.tok && a.tok < e)
            && !exempt(a.line, "lock-in-worker")
        {
            out.push(Violation {
                invariant: "lock-in-worker",
                file: path.to_string(),
                line: a.line + 1,
                detail: format!(
                    "`{}` {} acquired inside a spawned worker closure",
                    a.class, a.method
                ),
            });
        }
    }

    // guard-across-callback: a guard live range containing a call to one of
    // the enclosing function's callback parameters.
    for f in &fm.fns {
        if f.callback_params.is_empty() {
            continue;
        }
        for a in &fm.acquires {
            if a.tok < f.body.0 || a.tok > f.body.1 {
                continue;
            }
            // Only attribute to the innermost function.
            if fm
                .enclosing_fn(a.tok)
                .map(|inner| inner.fn_tok != f.fn_tok)
                .unwrap_or(true)
            {
                continue;
            }
            let end = a.live_end.min(f.body.1);
            for k in a.tok + 1..end {
                if k + 1 < toks.len()
                    && toks[k + 1].text == "("
                    && f.callback_params.iter().any(|p| p == toks[k].text)
                    && !exempt(a.line, "guard-across-callback")
                    && !exempt(toks[k].line, "guard-across-callback")
                {
                    out.push(Violation {
                        invariant: "guard-across-callback",
                        file: path.to_string(),
                        line: toks[k].line + 1,
                        detail: format!(
                            "guard on `{}` (acquired line {}) held across call to callback `{}`",
                            a.class,
                            a.line + 1,
                            toks[k].text
                        ),
                    });
                }
            }
        }
    }

    // Extraction for the workspace lock graph. Test-region and per-site
    // allowed acquires are dropped here so they never contribute edges.
    let mut fns = Vec::new();
    for f in &fm.fns {
        let mut acquires = Vec::new();
        for a in &fm.acquires {
            let innermost = fm
                .enclosing_fn(a.tok)
                .map(|inner| inner.fn_tok == f.fn_tok)
                .unwrap_or(false);
            if innermost && !exempt(a.line, "lock-order-cycle") {
                acquires.push((a.class.clone(), a.method, a.line, a.tok, a.live_end));
            }
        }
        // Call resolution is deliberately narrow: free calls (`helper(..)`)
        // and direct `self.method(..)` calls. Method calls on fields or
        // locals and `Type::assoc(..)` calls are NOT resolved — workspace
        // functions share names with std methods (`join`, `push`, `insert`,
        // `len`), and pooling those would connect the entire call graph to
        // every lock in the workspace.
        let mut calls = Vec::new();
        for k in f.body.0 + 1..f.body.1.min(toks.len().saturating_sub(1)) {
            let t = toks[k].text;
            if toks[k + 1].text != "("
                || model::is_keyword(t)
                || !t
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                || tests.get(toks[k].line).copied().unwrap_or(false)
            {
                continue;
            }
            let resolvable = if k == 0 {
                true
            } else {
                match toks[k - 1].text {
                    "fn" | ":" => false,
                    "." => {
                        k >= 2 && toks[k - 2].text == "self" && (k < 3 || toks[k - 3].text != ".")
                    }
                    _ => true,
                }
            };
            if resolvable {
                calls.push((t.to_string(), k, toks[k].line));
            }
        }
        fns.push(ExtractedFn {
            name: f.name.clone(),
            acquires,
            calls,
        });
    }
    Extracted {
        path: path.to_string(),
        fns,
    }
}

/// Transitive lock classes acquired by each function name, merged across the
/// workspace (same-name functions pool conservatively) and closed over the
/// call graph by fixpoint.
fn transitive_acquires(files: &[Extracted]) -> BTreeMap<String, BTreeSet<String>> {
    let mut acq: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut callees: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        for func in &f.fns {
            let a = acq.entry(func.name.clone()).or_default();
            for (class, ..) in &func.acquires {
                a.insert(class.clone());
            }
            let c = callees.entry(func.name.clone()).or_default();
            for (name, ..) in &func.calls {
                c.insert(name.clone());
            }
        }
    }
    let known: BTreeSet<String> = acq.keys().cloned().collect();
    loop {
        let mut changed = false;
        for name in &known {
            let called: Vec<String> = callees
                .get(name)
                .map(|s| s.iter().filter(|c| known.contains(*c)).cloned().collect())
                .unwrap_or_default();
            let mut add = BTreeSet::new();
            for c in &called {
                if let Some(set) = acq.get(c) {
                    add.extend(set.iter().cloned());
                }
            }
            let mine = acq.entry(name.clone()).or_default();
            for class in add {
                changed |= mine.insert(class);
            }
        }
        if !changed {
            break;
        }
    }
    acq
}

/// Build the lock-acquisition-order graph from extracted per-file data.
fn build_graph(files: &[Extracted]) -> Vec<LockEdge> {
    let trans = transitive_acquires(files);
    let known: BTreeSet<&String> = trans.keys().collect();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let push = |edges: &mut Vec<LockEdge>,
                seen: &mut BTreeSet<(String, String)>,
                from: &str,
                to: &str,
                file: &str,
                line: usize,
                via_call: bool| {
        if seen.insert((from.to_string(), to.to_string())) {
            edges.push(LockEdge {
                from: from.to_string(),
                to: to.to_string(),
                file: file.to_string(),
                line: line + 1,
                via_call,
            });
        }
    };
    for f in files {
        for func in &f.fns {
            for (i, a) in func.acquires.iter().enumerate() {
                let (a_class, a_method, _a_line, a_tok, a_end) = a;
                // Direct nesting: a later acquire inside this guard range.
                for b in func.acquires.iter().skip(i + 1) {
                    let (b_class, b_method, b_line, b_tok, _b_end) = b;
                    if b_tok <= a_tok || *b_tok >= *a_end {
                        continue;
                    }
                    // Nested shared reads of one RwLock order nothing.
                    if a_class == b_class && *a_method == "read" && *b_method == "read" {
                        continue;
                    }
                    push(
                        &mut edges, &mut seen, a_class, b_class, &f.path, *b_line, false,
                    );
                }
                // Call propagation: a call inside the guard range pulls in
                // everything the callee transitively acquires.
                for (callee, c_tok, c_line) in &func.calls {
                    if c_tok <= a_tok || *c_tok >= *a_end || !known.contains(callee) {
                        continue;
                    }
                    if let Some(classes) = trans.get(callee) {
                        for to in classes {
                            push(&mut edges, &mut seen, a_class, to, &f.path, *c_line, true);
                        }
                    }
                }
            }
        }
    }
    edges
}

/// Strongly connected components (Tarjan) over the class graph; any SCC
/// with more than one node — or a self-loop — is a potential deadlock.
fn cycle_components(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut nodes: Vec<String> = Vec::new();
    for e in edges {
        if !nodes.contains(&e.from) {
            nodes.push(e.from.clone());
        }
        if !nodes.contains(&e.to) {
            nodes.push(e.to.clone());
        }
    }
    nodes.sort();
    let idx = |n: &str| nodes.iter().position(|x| x == n).unwrap();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for e in edges {
        adj[idx(&e.from)].push(idx(&e.to));
    }

    struct Tarjan<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        sccs: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for i in 0..self.adj[v].len() {
                let w = self.adj[v][i];
                if self.index[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.index[w].unwrap());
                }
            }
            if self.low[v] == self.index[v].unwrap() {
                let mut comp = Vec::new();
                while let Some(w) = self.stack.pop() {
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.sccs.push(comp);
            }
        }
    }
    let mut t = Tarjan {
        adj: &adj,
        index: vec![None; nodes.len()],
        low: vec![0; nodes.len()],
        on_stack: vec![false; nodes.len()],
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for v in 0..nodes.len() {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    let self_loops: BTreeSet<usize> = edges
        .iter()
        .filter(|e| e.from == e.to)
        .map(|e| idx(&e.from))
        .collect();
    let mut out: Vec<Vec<String>> = t
        .sccs
        .into_iter()
        .filter(|c| c.len() > 1 || self_loops.contains(&c[0]))
        .map(|c| {
            let mut names: Vec<String> = c.into_iter().map(|i| nodes[i].clone()).collect();
            names.sort();
            names
        })
        .collect();
    out.sort();
    out
}

/// Run the static analysis over `(path, source)` pairs.
pub fn check_sources(files: &[(String, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut extracted = Vec::new();
    for (path, src) in files {
        let masked = scan::mask(src, "concheck:allow(");
        let toks = scan::tokenize(&masked.text);
        let tests = scan::test_lines(&masked.text);
        let fm = model::build(&toks);
        extracted.push(check_file(path, &masked, &toks, &tests, &fm, &mut out));
    }
    let edges = build_graph(&extracted);
    for comp in cycle_components(&edges) {
        let in_comp: Vec<&LockEdge> = edges
            .iter()
            .filter(|e| comp.contains(&e.from) && comp.contains(&e.to))
            .collect();
        let site = in_comp.first().expect("cycle component has an edge");
        let mut desc: Vec<String> = in_comp
            .iter()
            .map(|e| format!("{} -> {} ({}:{})", e.from, e.to, e.file, e.line))
            .collect();
        desc.sort();
        out.push(Violation {
            invariant: "lock-order-cycle",
            file: site.file.clone(),
            line: site.line,
            detail: format!(
                "lock-order cycle among {{{}}}: {}",
                comp.join(", "),
                desc.join("; ")
            ),
        });
    }
    out.sort_by(|a, b| (&a.file, a.line, a.invariant).cmp(&(&b.file, b.line, b.invariant)));
    out
}

/// The lock-acquisition-order graph for `(path, source)` pairs — exposed so
/// the runtime lock-witness can be cross-checked against the static view.
pub fn lock_graph(files: &[(String, String)]) -> Vec<LockEdge> {
    let mut extracted = Vec::new();
    let mut sink = Vec::new();
    for (path, src) in files {
        let masked = scan::mask(src, "concheck:allow(");
        let toks = scan::tokenize(&masked.text);
        let tests = scan::test_lines(&masked.text);
        let fm = model::build(&toks);
        extracted.push(check_file(path, &masked, &toks, &tests, &fm, &mut sink));
    }
    let mut edges = build_graph(&extracted);
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    edges
}

/// Scan the workspace rooted at `root` (its `crates/` and `src/` trees).
pub fn run(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(check_sources(&scan::read_workspace(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(specs: &[(&str, &str)]) -> Vec<(String, String)> {
        specs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn invariant_ids_are_distinct_and_sorted() {
        let ids: Vec<&str> = INVARIANTS.iter().map(|d| d.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ids, sorted, "INVARIANTS must be sorted by id, unique");
    }

    #[test]
    fn seeded_relaxed_atomic_is_flagged() {
        let v = check_sources(&files(&[(
            "crates/x/src/lib.rs",
            "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }\n",
        )]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "atomic-ordering");
        assert_eq!(v[0].line, 1);
        assert_eq!(
            v[0].to_string(),
            format!("crates/x/src/lib.rs:1: [atomic-ordering] {}", v[0].detail)
        );
    }

    #[test]
    fn allow_and_cfg_test_suppress_atomic_ordering() {
        let allowed = "fn f(c: &AtomicUsize) {\n    // concheck:allow(atomic-ordering) monotonic counter\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(check_sources(&files(&[("crates/x/src/lib.rs", allowed)])).is_empty());
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn f(c: &AtomicUsize) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(check_sources(&files(&[("crates/x/src/lib.rs", in_test)])).is_empty());
    }

    #[test]
    fn acquire_release_orderings_pass() {
        let src = "fn f(c: &AtomicUsize) {\n    c.store(1, Ordering::Release);\n    c.load(Ordering::Acquire);\n    c.fetch_add(1, Ordering::SeqCst);\n    c.fetch_or(1, Ordering::AcqRel);\n}\n";
        assert!(check_sources(&files(&[("crates/x/src/lib.rs", src)])).is_empty());
    }

    #[test]
    fn cmp_ordering_variants_never_match() {
        let src = "fn f(a: u32, b: u32) -> Ordering {\n    match a.cmp(&b) { Ordering::Less => Ordering::Less, o => o }\n}\n";
        assert!(check_sources(&files(&[("crates/x/src/lib.rs", src)])).is_empty());
    }

    #[test]
    fn seeded_lock_in_worker_is_flagged() {
        let src = "fn f(s: &Scope, m: &Mutex<u32>) {\n    s.spawn(move || {\n        let g = m.lock();\n        *g + 1\n    });\n}\n";
        let v = check_sources(&files(&[("crates/x/src/lib.rs", src)]));
        assert!(
            v.iter()
                .any(|v| v.invariant == "lock-in-worker" && v.line == 3),
            "{v:?}"
        );
    }

    #[test]
    fn lock_in_worker_allow_suppresses() {
        let src = "fn f(s: &Scope, m: &Mutex<u32>) {\n    s.spawn(move || {\n        // concheck:allow(lock-in-worker, lock-order-cycle) startup only\n        let g = m.lock();\n        *g + 1\n    });\n}\n";
        let v = check_sources(&files(&[("crates/x/src/lib.rs", src)]));
        assert!(v.iter().all(|v| v.invariant != "lock-in-worker"), "{v:?}");
    }

    #[test]
    fn seeded_guard_across_callback_is_flagged() {
        let src = "fn notify<F: FnMut(u64)>(m: &Mutex<u64>, cb: F) {\n    let g = m.lock();\n    cb(*g);\n}\n";
        let v = check_sources(&files(&[("crates/x/src/lib.rs", src)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "guard-across-callback");
        assert_eq!(v[0].line, 3);
        assert!(v[0].detail.contains("`cb`"), "{}", v[0].detail);
    }

    #[test]
    fn callback_after_guard_drop_passes() {
        let src = "fn notify<F: FnMut(u64)>(m: &Mutex<u64>, cb: F) {\n    let v = { let g = m.lock(); *g };\n    cb(v);\n}\n";
        assert!(check_sources(&files(&[("crates/x/src/lib.rs", src)])).is_empty());
    }

    #[test]
    fn seeded_lock_order_cycle_is_flagged() {
        let src = "fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\nfn ba(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let gb = b.lock();\n    let ga = a.lock();\n}\n";
        let v = check_sources(&files(&[("crates/x/src/lib.rs", src)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "lock-order-cycle");
        assert!(v[0].detail.contains("a -> b"), "{}", v[0].detail);
        assert!(v[0].detail.contains("b -> a"), "{}", v[0].detail);
    }

    #[test]
    fn cycle_through_call_edge_is_flagged() {
        let src = "fn helper(b: &Mutex<u32>) { let g = b.lock(); }\nfn ab(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let ga = a.lock();\n    helper(b);\n}\nfn ba(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let gb = b.lock();\n    let ga = a.lock();\n}\n";
        let v = check_sources(&files(&[("crates/x/src/lib.rs", src)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "lock-order-cycle");
        let g = lock_graph(&files(&[("crates/x/src/lib.rs", src)]));
        assert!(
            g.iter().any(|e| e.from == "a" && e.to == "b" && e.via_call),
            "{g:?}"
        );
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let src = "fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\nfn ab2(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\n";
        let v = check_sources(&files(&[("crates/x/src/lib.rs", src)]));
        assert!(v.is_empty(), "{v:?}");
        let g = lock_graph(&files(&[("crates/x/src/lib.rs", src)]));
        assert_eq!(g.len(), 1);
        assert_eq!((g[0].from.as_str(), g[0].to.as_str()), ("a", "b"));
    }

    #[test]
    fn self_nested_lock_is_a_cycle_but_shared_reads_are_not() {
        let relock = "fn f(m: &Mutex<u32>) {\n    let g = m.lock();\n    let h = m.lock();\n}\n";
        let v = check_sources(&files(&[("crates/x/src/lib.rs", relock)]));
        assert!(v.iter().any(|v| v.invariant == "lock-order-cycle"), "{v:?}");
        let rr = "fn f(m: &RwLock<u32>) {\n    let g = m.read();\n    let h = m.read();\n}\n";
        assert!(check_sources(&files(&[("crates/x/src/lib.rs", rr)])).is_empty());
    }

    #[test]
    fn cross_file_cycle_is_flagged() {
        let v = check_sources(&files(&[
            (
                "crates/x/src/a.rs",
                "fn ab(a: &Mutex<u32>, b: &Mutex<u32>) { let g = a.lock(); let h = b.lock(); }\n",
            ),
            (
                "crates/y/src/b.rs",
                "fn ba(a: &Mutex<u32>, b: &Mutex<u32>) { let g = b.lock(); let h = a.lock(); }\n",
            ),
        ]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "lock-order-cycle");
    }

    #[test]
    fn repo_scans_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("workspace root")
            .to_path_buf();
        let v = run(&root).expect("scan workspace");
        assert!(
            v.is_empty(),
            "concheck violations in repo:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
