//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, so the workspace builds and benches run fully offline.
//!
//! It implements the subset of the criterion 0.5 API that the `ojv-bench`
//! benches use — `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`/`bench_with_input`, and `Bencher::{iter, iter_batched}`
//! — with plain wall-clock sampling and a one-line median/mean report per
//! benchmark. It does not do statistical outlier analysis, HTML reports, or
//! baseline comparison; for those, wire the real criterion back in.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group, e.g. `BenchmarkId::new("probe", 4096)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How `iter_batched` amortises setup; retained for API compatibility only —
/// this shim always runs one setup per timed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Collects per-sample iteration timings for one benchmark.
pub struct Bencher<'a> {
    config: &'a Config,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine`, called in batches sized so each sample is long enough
    /// to measure reliably.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as calibration: find how many calls fill ~1/10th
        // of a sample budget, so per-call timer overhead is amortised.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut calls_per_sample = 1u64;
        let mut elapsed = Duration::ZERO;
        let mut calls = 0u64;
        while Instant::now() < warm_deadline || calls == 0 {
            let start = Instant::now();
            black_box(routine());
            elapsed += start.elapsed();
            calls += 1;
        }
        let per_call = elapsed / calls as u32;
        let sample_budget = self.config.measurement_time / self.config.sample_size as u32;
        if per_call > Duration::ZERO {
            calls_per_sample =
                (sample_budget.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        }

        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / calls_per_sample as u32);
        }
    }

    /// Time `routine` on fresh input from `setup`; setup runs untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Untimed warm-up pass.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            // Stop the clock *before* dropping the routine's output —
            // criterion's documented `iter_batched` semantics. Benches
            // return their fixtures (catalog clones, views) precisely so
            // teardown stays out of the measurement; timing the drop buries
            // a millisecond-scale routine under the deallocation of a
            // hundred-megabyte fixture.
            self.samples.push(start.elapsed());
            drop(output);
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<50} median {:>12} mean {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

fn run_bench(config: &Config, name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    report(name, &mut bencher.samples);
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let mut f = f;
        run_bench(&self.config, &name, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        let mut f = f;
        run_bench(&self.config, &name, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("--- {name} ---");
        BenchmarkGroup {
            name,
            config: Config::default(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_bench(&Config::default(), name, |b| f(b));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let config = Config {
            sample_size: 5,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 5);
        assert!(count >= 5, "routine ran at least once per sample");
    }

    #[test]
    fn bencher_iter_batched_runs_setup_per_sample() {
        let config = Config {
            sample_size: 4,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::PerIteration);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("probe", 4096);
        assert_eq!(id.id, "probe/4096");
        let id: BenchmarkId = "plain".into();
        assert_eq!(id.id, "plain");
    }

    #[test]
    fn fmt_duration_picks_unit() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.000 s");
    }
}
