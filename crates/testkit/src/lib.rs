//! In-repo test substrate: a deterministic PRNG and a minimal
//! shrink-capable property-testing harness.
//!
//! This crate exists so the workspace's tier-1 verify
//! (`cargo build --release && cargo test -q`) completes **fully offline**:
//! it replaces the `rand` and `proptest` crates-io dependencies with ~500
//! lines of plain Rust.
//!
//! * [`rng`] — SplitMix64-seeded xorshift128+ generator with a
//!   rand-compatible surface (`gen_range`, `gen_bool`),
//! * [`strategy`] — value-based generation + shrinking ([`Strategy`]),
//! * [`check`] — the [`property!`] macro's case runner and shrink loop,
//! * [`sched`] — a deterministic virtual-thread scheduler (seeded, replayed,
//!   or exhaustively enumerated interleavings — the in-repo stand-in for
//!   `loom`),
//! * [`race`] — a vector-clock happens-before race detector plus runtime
//!   lock witness, woven into [`sched`]'s virtual threads (the dynamic half
//!   of the `ojv-concheck` concurrency soundness layer).
//!
//! ```
//! use ojv_testkit::property;
//!
//! property! {
//!     #[cases = 32]
//!     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]

pub mod check;
pub mod fault;
pub mod race;
pub mod rng;
pub mod sched;
pub mod strategy;

pub use check::run_property;
pub use fault::{fault_spec, FaultFile, FaultSpec, FaultSpecStrategy};
pub use rng::{mix, Rng};
pub use sched::{interleavings, replay, run_seeded, Actor};
pub use strategy::{choice, strategy, vec_of, Just, Strategy};

// Allocation-discipline instrumentation: a counting `#[global_allocator]`
// test harnesses can install to assert hot paths stay allocation-free.
// The counters live in `ojv_rel` (next to the operators they audit);
// re-exported here so test crates only need the testkit.
pub use ojv_rel::{alloc_counting_active, alloc_snapshot, AllocSnapshot, CountingAlloc};
