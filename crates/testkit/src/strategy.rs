//! Value-based generation and shrinking.
//!
//! Unlike proptest's `ValueTree`, a [`Strategy`] here generates plain values
//! and shrinks them after the fact: `shrink(v)` proposes a handful of
//! strictly "smaller" candidates, and the runner greedily re-tests them. That
//! is less powerful than integrated shrinking but small enough to live
//! in-repo with zero dependencies, and it covers what our property tests
//! need: integer ranges, booleans, choices from a slice, and vectors.

use crate::rng::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value: Clone + Debug;

    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose smaller candidates for a failing value. The runner re-tests
    /// them in order and recurses on the first that still fails.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(self.start, *v)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(*self.start(), *v)
            }
        }

        impl Shrinkable for $t {
            fn shrink_toward(lo: $t, v: $t) -> Vec<$t> {
                if v == lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
                out.push(v - 1);
                out.dedup();
                out
            }
        }
    )*};
}

trait Shrinkable: Sized {
    fn shrink_toward(lo: Self, v: Self) -> Vec<Self>;
}

fn shrink_int<T: Shrinkable>(lo: T, v: T) -> Vec<T> {
    T::shrink_toward(lo, v)
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Always the same value; never shrinks.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Uniform pick from a fixed list; shrinks toward earlier entries.
#[derive(Debug, Clone)]
pub struct Choice<T>(Vec<T>);

pub fn choice<T: Clone + Debug + PartialEq>(items: Vec<T>) -> Choice<T> {
    assert!(!items.is_empty(), "choice of nothing");
    Choice(items)
}

impl<T: Clone + Debug + PartialEq> Strategy for Choice<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        match self.0.iter().position(|x| x == v) {
            Some(i) => self.0[..i].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Vector of `inner`-generated elements with length drawn from `len`.
/// Shrinks by removing elements (down to the minimum length) and by
/// shrinking individual elements.
pub struct VecOf<S> {
    inner: S,
    len: Range<usize>,
}

pub fn vec_of<S: Strategy>(inner: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "vec_of on empty length range");
    VecOf { inner, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.inner.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        if v.len() > self.len.start {
            // Drop the back half, then each element individually.
            let half = self.len.start.max(v.len() / 2);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            for i in (0..v.len()).rev() {
                let mut shorter = v.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        for (i, elem) in v.iter().enumerate() {
            for smaller in self.inner.shrink(elem) {
                let mut copy = v.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}

/// Build a strategy from closures, for one-off generators.
pub struct FnStrategy<G, S> {
    generate: G,
    shrink: S,
}

pub fn strategy<V, G, S>(generate: G, shrink: S) -> FnStrategy<G, S>
where
    V: Clone + Debug,
    G: Fn(&mut Rng) -> V,
    S: Fn(&V) -> Vec<V>,
{
    FnStrategy { generate, shrink }
}

impl<V, G, S> Strategy for FnStrategy<G, S>
where
    V: Clone + Debug,
    G: Fn(&mut Rng) -> V,
    S: Fn(&V) -> Vec<V>,
{
    type Value = V;

    fn generate(&self, rng: &mut Rng) -> V {
        (self.generate)(rng)
    }

    fn shrink(&self, v: &V) -> Vec<V> {
        (self.shrink)(v)
    }
}

// Tuples of strategy *references*, as produced by the `property!` macro.
// Each component shrinks independently while the others stay fixed.
macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident / $i:tt),+))+) => {$(
        impl<'a, $($s: Strategy),+> Strategy for ($(&'a $s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for smaller in self.$i.shrink(&value.$i) {
                        let mut copy = value.clone();
                        copy.$i = smaller;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (S0/v0/0)
    (S0/v0/0, S1/v1/1)
    (S0/v0/0, S1/v1/1, S2/v2/2)
    (S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3)
    (S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3, S4/v4/4)
    (S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3, S4/v4/4, S5/v5/5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_generates_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        let s = 10i64..20;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn int_shrink_moves_toward_lower_bound() {
        let s = 0i64..100;
        let candidates = s.shrink(&40);
        assert!(candidates.contains(&0));
        assert!(candidates.contains(&39));
        assert!(candidates.iter().all(|&c| c < 40));
        assert!(s.shrink(&0).is_empty());
    }

    #[test]
    fn choice_shrinks_toward_earlier_entries() {
        let s = choice(vec!["a", "b", "c"]);
        assert_eq!(s.shrink(&"c"), vec!["a", "b"]);
        assert!(s.shrink(&"a").is_empty());
    }

    #[test]
    fn vec_of_respects_length_and_shrinks_shorter() {
        let mut rng = Rng::seed_from_u64(9);
        let s = vec_of(0i64..5, 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let shrunk = s.shrink(&vec![4, 4, 4, 4]);
        assert!(shrunk.iter().any(|c| c.len() < 4));
        assert!(shrunk.iter().all(|c| c.len() >= 2 || c.len() == 3));
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let a = 0i64..10;
        let b = 0i64..10;
        let t = (&a, &b);
        let candidates = t.shrink(&(5, 7));
        assert!(candidates.iter().any(|&(x, y)| x < 5 && y == 7));
        assert!(candidates.iter().any(|&(x, y)| x == 5 && y < 7));
    }

    #[test]
    fn fn_strategy_round_trips() {
        let s = strategy(
            |rng: &mut Rng| rng.gen_range(0i64..3) * 2,
            |v: &i64| if *v > 0 { vec![v - 2] } else { vec![] },
        );
        let mut rng = Rng::seed_from_u64(2);
        let v = s.generate(&mut rng);
        assert!(v % 2 == 0);
        assert_eq!(s.shrink(&4), vec![2]);
    }
}
