//! A deterministic virtual-thread scheduler for interleaving tests.
//!
//! The workspace is zero-dependency, so instead of `loom` this module
//! provides the minimal equivalent: *actors* (closures advancing one
//! logical thread by one step) are interleaved either under a seeded PRNG
//! ([`run_seeded`]), by exhaustive enumeration ([`interleavings`] +
//! [`replay`]), or from a recorded trace ([`replay`] again — every run
//! returns the trace that reproduces it).
//!
//! Actors share state through plain `Rc<RefCell<…>>` captured by the
//! closures — the scheduler itself is single-threaded, which is exactly
//! what makes an interleaving reproducible: a trace is a total order of
//! steps, and replaying it performs the identical sequence of shared-state
//! operations. Concurrency bugs that depend on *orderings* (commit during a
//! read, reclamation racing a pin, a crash between commit and fsync) are
//! covered; data races on actual CPUs are out of scope (the snapshot
//! registry's `Mutex` handles those, exercised by the stress tests).
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use ojv_testkit::sched::{interleavings, replay, run_seeded, Actor};
//!
//! let log = Rc::new(RefCell::new(Vec::new()));
//! let mk = |tag: char, n: usize| -> Actor {
//!     let log = Rc::clone(&log);
//!     let mut left = n;
//!     Box::new(move || {
//!         log.borrow_mut().push(tag);
//!         left -= 1;
//!         left > 0
//!     })
//! };
//! let trace = run_seeded(42, &mut [mk('a', 2), mk('b', 1)]);
//! assert_eq!(trace.len(), 3);
//! assert_eq!(interleavings(&[2, 1]).len(), 3); // aab aba baa
//! log.borrow_mut().clear();
//! replay(&trace, &mut [mk('a', 2), mk('b', 1)]); // reproduces the run
//! ```

use crate::race;
use crate::rng::Rng;

/// One logical thread: each call advances it by one step and returns
/// whether it has more steps to run.
pub type Actor = Box<dyn FnMut() -> bool>;

/// Run `actors` to completion under a seeded random interleaving: at every
/// point one live actor is chosen uniformly by a [`Rng`] seeded with
/// `seed` and stepped once. Returns the trace of chosen actor indices —
/// feeding it to [`replay`] with freshly-built actors reproduces the run
/// exactly.
///
/// When a [`crate::race`] detector session is active, every actor runs as
/// a virtual thread with its own vector clock: spawn edges at schedule
/// start, a join edge when an actor finishes, and a full rejoin when the
/// schedule ends.
pub fn run_seeded(seed: u64, actors: &mut [Actor]) -> Vec<usize> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: Vec<usize> = (0..actors.len()).collect();
    let mut trace = Vec::new();
    race::begin_schedule(actors.len());
    while !live.is_empty() {
        let pick = rng.gen_range(0..live.len());
        let idx = live[pick];
        trace.push(idx);
        race::enter_virtual(Some(idx));
        let more = actors[idx]();
        race::enter_virtual(None);
        if !more {
            race::virtual_done(idx);
            live.remove(pick);
        }
    }
    race::end_schedule();
    trace
}

/// Replay a recorded trace: step the named actors in exactly that order.
///
/// Panics if the trace steps an actor that already finished or names an
/// out-of-range index — a replayed trace must come from an identically
/// constructed actor set.
pub fn replay(trace: &[usize], actors: &mut [Actor]) {
    let mut live = vec![true; actors.len()];
    race::begin_schedule(actors.len());
    for (step, &idx) in trace.iter().enumerate() {
        assert!(
            idx < actors.len(),
            "trace step {step} names actor {idx}, but only {} exist",
            actors.len()
        );
        assert!(
            live[idx],
            "trace step {step} steps actor {idx}, which already finished"
        );
        race::enter_virtual(Some(idx));
        live[idx] = actors[idx]();
        race::enter_virtual(None);
        if !live[idx] {
            race::virtual_done(idx);
        }
    }
    race::end_schedule();
}

/// Every interleaving of `steps.len()` actors where actor `i` runs
/// `steps[i]` steps, as traces for [`replay`]. The count is the multinomial
/// coefficient `(Σsteps)! / Π(steps[i]!)` — keep the step counts small
/// (e.g. `[3, 3]` → 20, `[4, 4]` → 70, `[3, 3, 2]` → 560).
pub fn interleavings(steps: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = steps.iter().sum();
    let mut remaining = steps.to_vec();
    let mut out = Vec::new();
    let mut prefix = Vec::with_capacity(total);
    fn go(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        out: &mut Vec<Vec<usize>>,
    ) {
        if prefix.len() == total {
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                prefix.push(i);
                go(remaining, prefix, total, out);
                prefix.pop();
                remaining[i] += 1;
            }
        }
    }
    go(&mut remaining, &mut prefix, total, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// An actor appending `tag` to a shared log `n` times.
    fn logger(log: &Rc<RefCell<Vec<char>>>, tag: char, n: usize) -> Actor {
        let log = Rc::clone(log);
        let mut left = n;
        Box::new(move || {
            assert!(left > 0, "stepped past the end");
            log.borrow_mut().push(tag);
            left -= 1;
            left > 0
        })
    }

    #[test]
    fn run_seeded_is_deterministic_and_complete() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let log_a = Rc::new(RefCell::new(Vec::new()));
            let trace_a = run_seeded(seed, &mut [logger(&log_a, 'a', 3), logger(&log_a, 'b', 2)]);
            let log_b = Rc::new(RefCell::new(Vec::new()));
            let trace_b = run_seeded(seed, &mut [logger(&log_b, 'a', 3), logger(&log_b, 'b', 2)]);
            assert_eq!(trace_a, trace_b, "same seed, same schedule");
            assert_eq!(log_a, log_b);
            assert_eq!(trace_a.len(), 5, "every step of every actor runs");
            assert_eq!(log_a.borrow().iter().filter(|&&c| c == 'a').count(), 3);
            assert_eq!(log_a.borrow().iter().filter(|&&c| c == 'b').count(), 2);
        }
    }

    #[test]
    fn seeds_explore_different_schedules() {
        let traces: Vec<Vec<usize>> = (0..16)
            .map(|seed| {
                let log = Rc::new(RefCell::new(Vec::new()));
                run_seeded(seed, &mut [logger(&log, 'a', 3), logger(&log, 'b', 3)])
            })
            .collect();
        let first = &traces[0];
        assert!(
            traces.iter().any(|t| t != first),
            "16 seeds must not all produce the same interleaving"
        );
    }

    #[test]
    fn replay_reproduces_a_recorded_run() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let trace = run_seeded(9, &mut [logger(&log, 'a', 4), logger(&log, 'b', 3)]);
        let original = log.borrow().clone();
        let log2 = Rc::new(RefCell::new(Vec::new()));
        replay(&trace, &mut [logger(&log2, 'a', 4), logger(&log2, 'b', 3)]);
        assert_eq!(*log2.borrow(), original, "replay of seed 9 trace {trace:?}");
    }

    #[test]
    fn interleavings_enumerate_the_multinomial() {
        assert_eq!(interleavings(&[1]), vec![vec![0]], "trace set for [1]");
        assert_eq!(interleavings(&[2, 1]).len(), 3, "trace count for [2,1]");
        assert_eq!(interleavings(&[3, 3]).len(), 20, "trace count for [3,3]");
        assert_eq!(
            interleavings(&[2, 2, 2]).len(),
            90,
            "trace count for [2,2,2]"
        );
        // All distinct, all complete.
        let all = interleavings(&[3, 2]);
        for t in &all {
            assert_eq!(t.iter().filter(|&&i| i == 0).count(), 3);
            assert_eq!(t.iter().filter(|&&i| i == 1).count(), 2);
        }
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn every_interleaving_replays() {
        for trace in interleavings(&[2, 2]) {
            let log = Rc::new(RefCell::new(Vec::new()));
            replay(&trace, &mut [logger(&log, 'a', 2), logger(&log, 'b', 2)]);
            assert_eq!(
                log.borrow().len(),
                4,
                "incomplete replay of trace {trace:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn replay_rejects_overrunning_a_finished_actor() {
        let log = Rc::new(RefCell::new(Vec::new()));
        replay(&[0, 0], &mut [logger(&log, 'a', 1)]);
    }
}
