//! Vector-clock happens-before race detector and runtime lock witness.
//!
//! This is the dynamic half of the concurrency soundness layer (the static
//! half is `ojv-concheck`). A test installs the detector with [`install`],
//! then every traced access — [`on_read`]/[`on_write`] on a named cell,
//! [`lock_acquired`]/[`lock_released`] on a named lock, [`publish`]/
//! [`observe`] on a named channel — is stamped with the acting thread's
//! vector clock. Two accesses to the same cell conflict when at least one
//! is a write; a conflicting pair with no happens-before edge between them
//! is reported as a [`Race`] carrying both access paths plus the seed label
//! given to `install`, so the interleaving replays deterministically.
//!
//! Happens-before edges come from:
//! * lock release → later acquire of the same lock (clock transfer);
//! * [`publish`] → [`observe`] on the same channel (spawn/join/commit
//!   edges are expressed this way);
//! * scheduler edges in [`crate::sched`]: every virtual thread starts
//!   after `run_seeded` begins and the scheduler rejoins all of them when
//!   the schedule ends.
//!
//! The same acquire stream feeds a **lock witness**: per-thread held-lock
//! stacks record every acquisition-order edge actually executed, which
//! tests cross-check against the static lock graph from `ojv-concheck`.
//!
//! Everything is a no-op until `install` is called, and `install` holds a
//! process-wide serialization lock so concurrently running tests cannot
//! corrupt each other's event streams. Real OS threads participate after
//! calling [`register_thread`]; the virtual threads of `sched::run_seeded`
//! are registered automatically.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One recorded access epoch: thread `slot` at local time `at`.
#[derive(Debug, Clone)]
struct Access {
    slot: usize,
    at: u32,
    thread: String,
    path: String,
}

/// A conflicting access pair with no happens-before edge.
#[derive(Debug, Clone)]
pub struct Race {
    pub cell: String,
    /// `"write-write"`, `"write-read"` or `"read-write"` (prior kind first).
    pub kind: &'static str,
    pub prior_thread: String,
    pub prior_path: String,
    pub current_thread: String,
    pub current_path: String,
    /// The label passed to [`install`] — by convention the scheduler seed.
    pub seed: String,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on `{}` ({}): {} at {} vs {} at {} [{}]",
            self.cell,
            self.kind,
            self.prior_thread,
            self.prior_path,
            self.current_thread,
            self.current_path,
            self.seed
        )
    }
}

/// One acquisition-order edge observed at runtime: `from` was held when
/// `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WitnessEdge {
    pub from: String,
    pub to: String,
    /// Source location of the inner acquisition.
    pub at: String,
}

struct CellState {
    write: Option<Access>,
    /// Most recent read per slot since the last write.
    reads: BTreeMap<usize, Access>,
}

struct Slot {
    name: String,
    clock: Vec<u32>,
}

struct State {
    seed: String,
    slots: Vec<Slot>,
    cells: BTreeMap<String, CellState>,
    /// Release clock per lock label.
    locks: BTreeMap<String, Vec<u32>>,
    /// Published clock per channel.
    chans: BTreeMap<String, Vec<u32>>,
    /// Held-lock stack per slot.
    held: BTreeMap<usize, Vec<String>>,
    witness: Vec<WitnessEdge>,
    races: Vec<Race>,
    events: u64,
    /// Virtual-thread slot ids for the active schedule, if any.
    virtuals: Vec<usize>,
    current_virtual: Option<usize>,
    sched_slot: usize,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);
/// Serializes whole detector sessions across concurrently running tests.
static SERIAL: Mutex<()> = Mutex::new(());

thread_local! {
    /// (generation, slot) — stale generations are ignored.
    static SLOT: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}
static GENERATION: Mutex<u64> = Mutex::new(0);

fn state() -> MutexGuard<'static, Option<State>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Is a detector session active?
pub fn active() -> bool {
    ACTIVE.load(Ordering::SeqCst)
}

fn join(dst: &mut Vec<u32>, src: &[u32]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

impl State {
    fn new_slot(&mut self, name: String) -> usize {
        let id = self.slots.len();
        let mut clock = vec![0; id + 1];
        clock[id] = 1;
        self.slots.push(Slot { name, clock });
        id
    }

    fn tick(&mut self, slot: usize) -> u32 {
        let c = &mut self.slots[slot].clock;
        if c.len() <= slot {
            c.resize(slot + 1, 0);
        }
        c[slot] += 1;
        c[slot]
    }

    /// Did access `a` happen before the current state of `slot`?
    fn access(&mut self, slot: usize, path: String) -> Access {
        let at = self.tick(slot);
        Access {
            slot,
            at,
            thread: self.slots[slot].name.clone(),
            path,
        }
    }
}

/// The slot acting on this thread: the schedule's current virtual thread
/// when one is entered, else this OS thread's registered slot, else a
/// fresh anonymous slot.
fn acting_slot(st: &mut State, generation: u64) -> usize {
    if let Some(v) = st.current_virtual {
        return st.virtuals[v];
    }
    let tls = SLOT.with(|s| s.get());
    if let Some((g, slot)) = tls {
        if g == generation && slot < st.slots.len() {
            return slot;
        }
    }
    let slot = st.new_slot(format!("anon-{}", st.slots.len()));
    SLOT.with(|s| s.set(Some((generation, slot))));
    slot
}

fn current_generation() -> u64 {
    *GENERATION.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Report of a finished detector session.
#[derive(Debug)]
pub struct Report {
    pub seed: String,
    pub races: Vec<Race>,
    pub events: u64,
    pub witness: Vec<WitnessEdge>,
}

impl Report {
    /// Panic with every race if any were recorded.
    pub fn assert_no_races(&self) {
        assert!(
            self.races.is_empty(),
            "happens-before detector found {} race(s) [{}]:\n{}",
            self.races.len(),
            self.seed,
            self.races
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Labels forming a cycle in the witnessed acquisition-order graph, if
    /// one exists (sorted; `None` means the runtime order was consistent).
    pub fn witness_cycle(&self) -> Option<Vec<String>> {
        witness_cycle_in(&self.witness)
    }
}

/// Find a strongly connected component (or self-loop) in witness edges.
pub fn witness_cycle_in(edges: &[WitnessEdge]) -> Option<Vec<String>> {
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        if !nodes.contains(&e.from.as_str()) {
            nodes.push(&e.from);
        }
        if !nodes.contains(&e.to.as_str()) {
            nodes.push(&e.to);
        }
    }
    nodes.sort_unstable();
    let idx = |n: &str| nodes.iter().position(|x| *x == n).unwrap();
    let n = nodes.len();
    let mut reach = vec![vec![false; n]; n];
    for e in edges {
        reach[idx(&e.from)][idx(&e.to)] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
            }
        }
    }
    let cyc: Vec<String> = (0..n)
        .filter(|&i| reach[i][i])
        .map(|i| nodes[i].to_string())
        .collect();
    if cyc.is_empty() {
        None
    } else {
        Some(cyc)
    }
}

/// Active detector session. Ends (and uninstalls) on drop or [`finish`].
///
/// [`finish`]: DetectorGuard::finish
pub struct DetectorGuard {
    _serial: MutexGuard<'static, ()>,
    finished: bool,
}

impl DetectorGuard {
    /// Stop the session and return everything it recorded.
    pub fn finish(mut self) -> Report {
        self.finished = true;
        uninstall()
    }

    /// Panic with a full report if any race has been recorded so far.
    pub fn assert_no_races(&self) {
        let st = state();
        let st = st.as_ref().expect("detector active");
        assert!(
            st.races.is_empty(),
            "happens-before detector found {} race(s) [{}]:\n{}",
            st.races.len(),
            st.seed,
            st.races
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl Drop for DetectorGuard {
    fn drop(&mut self) {
        if !self.finished {
            uninstall();
        }
    }
}

fn uninstall() -> Report {
    ACTIVE.store(false, Ordering::SeqCst);
    {
        let mut g = GENERATION.lock().unwrap_or_else(PoisonError::into_inner);
        *g += 1;
    }
    let st = state().take().expect("detector was active");
    Report {
        seed: st.seed,
        races: st.races,
        events: st.events,
        witness: st.witness,
    }
}

/// Start a detector session. `seed` labels every race report (pass the
/// scheduler seed, e.g. `"seed=42"`, so failures replay). The calling
/// thread is registered as `"main"`.
pub fn install(seed: &str) -> DetectorGuard {
    let serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let generation = {
        let mut g = GENERATION.lock().unwrap_or_else(PoisonError::into_inner);
        *g += 1;
        *g
    };
    let mut st = State {
        seed: seed.to_string(),
        slots: Vec::new(),
        cells: BTreeMap::new(),
        locks: BTreeMap::new(),
        chans: BTreeMap::new(),
        held: BTreeMap::new(),
        witness: Vec::new(),
        races: Vec::new(),
        events: 0,
        virtuals: Vec::new(),
        current_virtual: None,
        sched_slot: 0,
    };
    let main = st.new_slot("main".to_string());
    SLOT.with(|s| s.set(Some((generation, main))));
    *state() = Some(st);
    ACTIVE.store(true, Ordering::SeqCst);
    DetectorGuard {
        _serial: serial,
        finished: false,
    }
}

/// Register the calling OS thread under `name`. Pair with a
/// [`publish`]/[`observe`] channel to give it a spawn edge from its parent.
pub fn register_thread(name: &str) {
    if !active() {
        return;
    }
    let generation = current_generation();
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    let slot = st.new_slot(name.to_string());
    SLOT.with(|s| s.set(Some((generation, slot))));
}

fn record_read_or_write(cell: &str, is_write: bool, path: String) {
    let generation = current_generation();
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    st.events += 1;
    let slot = acting_slot(st, generation);
    let acc = st.access(slot, path);
    let seed = st.seed.clone();
    let entry = st.cells.entry(cell.to_string()).or_insert(CellState {
        write: None,
        reads: BTreeMap::new(),
    });
    // Split borrows: check against prior accesses, then record.
    let mut races: Vec<Race> = Vec::new();
    {
        let slots = &st.slots;
        let hb = |a: &Access| {
            a.slot == slot || slots[slot].clock.get(a.slot).copied().unwrap_or(0) >= a.at
        };
        if let Some(w) = &entry.write {
            if !hb(w) {
                races.push(Race {
                    cell: cell.to_string(),
                    kind: if is_write {
                        "write-write"
                    } else {
                        "write-read"
                    },
                    prior_thread: w.thread.clone(),
                    prior_path: w.path.clone(),
                    current_thread: acc.thread.clone(),
                    current_path: acc.path.clone(),
                    seed: seed.clone(),
                });
            }
        }
        if is_write {
            for r in entry.reads.values() {
                if !hb(r) {
                    races.push(Race {
                        cell: cell.to_string(),
                        kind: "read-write",
                        prior_thread: r.thread.clone(),
                        prior_path: r.path.clone(),
                        current_thread: acc.thread.clone(),
                        current_path: acc.path.clone(),
                        seed: seed.clone(),
                    });
                }
            }
        }
    }
    if is_write {
        entry.reads.clear();
        entry.write = Some(acc);
    } else {
        entry.reads.insert(slot, acc);
    }
    st.races.extend(races);
}

/// Record a read of the named cell by the acting thread.
#[track_caller]
pub fn on_read(cell: &str) {
    if !active() {
        return;
    }
    let loc = Location::caller();
    record_read_or_write(cell, false, format!("{}:{}", loc.file(), loc.line()));
}

/// Record a write of the named cell by the acting thread.
#[track_caller]
pub fn on_write(cell: &str) {
    if !active() {
        return;
    }
    let loc = Location::caller();
    record_read_or_write(cell, true, format!("{}:{}", loc.file(), loc.line()));
}

/// Record acquisition of the named lock: joins the lock's release clock
/// into the acting thread (the happens-before edge every `Mutex` grants)
/// and pushes a held-stack entry feeding the lock witness.
#[track_caller]
pub fn lock_acquired(label: &str) {
    if !active() {
        return;
    }
    let loc = Location::caller();
    let at = format!("{}:{}", loc.file(), loc.line());
    let generation = current_generation();
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    st.events += 1;
    let slot = acting_slot(st, generation);
    st.tick(slot);
    if let Some(rel) = st.locks.get(label).cloned() {
        join(&mut st.slots[slot].clock, &rel);
    }
    let held = st.held.entry(slot).or_default().clone();
    for h in &held {
        if h != label {
            let edge = WitnessEdge {
                from: h.clone(),
                to: label.to_string(),
                at: at.clone(),
            };
            if !st.witness.contains(&edge) {
                st.witness.push(edge);
            }
        }
    }
    st.held.entry(slot).or_default().push(label.to_string());
}

/// Record release of the named lock: stores the acting thread's clock as
/// the lock's release clock and pops the held stack.
pub fn lock_released(label: &str) {
    if !active() {
        return;
    }
    let generation = current_generation();
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    st.events += 1;
    let slot = acting_slot(st, generation);
    st.tick(slot);
    let clock = st.slots[slot].clock.clone();
    let rel = st.locks.entry(label.to_string()).or_default();
    join(rel, &clock);
    if let Some(stack) = st.held.get_mut(&slot) {
        if let Some(pos) = stack.iter().rposition(|l| l == label) {
            stack.remove(pos);
        }
    }
}

/// Publish the acting thread's clock on a named channel (the source half
/// of an explicit happens-before edge: spawn, join, commit-publish).
pub fn publish(chan: &str) {
    if !active() {
        return;
    }
    let generation = current_generation();
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    st.events += 1;
    let slot = acting_slot(st, generation);
    st.tick(slot);
    let clock = st.slots[slot].clock.clone();
    let c = st.chans.entry(chan.to_string()).or_default();
    join(c, &clock);
}

/// Join a named channel's published clock into the acting thread (the sink
/// half of an explicit happens-before edge).
pub fn observe(chan: &str) {
    if !active() {
        return;
    }
    let generation = current_generation();
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    st.events += 1;
    let slot = acting_slot(st, generation);
    st.tick(slot);
    if let Some(c) = st.chans.get(chan).cloned() {
        join(&mut st.slots[slot].clock, &c);
    }
}

/// Races recorded so far in the active session.
pub fn races() -> Vec<Race> {
    state()
        .as_ref()
        .map(|st| st.races.clone())
        .unwrap_or_default()
}

/// Events recorded so far (used by tests to prove the detector really ran).
pub fn events_recorded() -> u64 {
    state().as_ref().map(|st| st.events).unwrap_or(0)
}

/// Acquisition-order edges witnessed so far.
pub fn witness_edges() -> Vec<WitnessEdge> {
    let mut e = state()
        .as_ref()
        .map(|st| st.witness.clone())
        .unwrap_or_default();
    e.sort();
    e
}

// ---- scheduler integration (called by `crate::sched`) ----

/// Start a schedule of `n` virtual threads; each starts with a spawn edge
/// from the scheduling thread.
pub fn begin_schedule(n: usize) {
    if !active() {
        return;
    }
    let generation = current_generation();
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    let sched = acting_slot(st, generation);
    st.sched_slot = sched;
    st.tick(sched);
    let base = st.slots[sched].clock.clone();
    st.virtuals = (0..n)
        .map(|i| {
            let s = st.new_slot(format!("virtual-{i}"));
            join(&mut st.slots[s].clock, &base);
            s
        })
        .collect();
    st.current_virtual = None;
}

/// Enter (or with `None`, leave) a virtual thread for the next step.
pub fn enter_virtual(i: Option<usize>) {
    if !active() {
        return;
    }
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    st.current_virtual = i.filter(|&i| i < st.virtuals.len());
}

/// A virtual thread finished: join edge back into the scheduling thread.
pub fn virtual_done(i: usize) {
    if !active() {
        return;
    }
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    if i >= st.virtuals.len() {
        return;
    }
    let slot = st.virtuals[i];
    let clock = st.slots[slot].clock.clone();
    let sched = st.sched_slot;
    join(&mut st.slots[sched].clock, &clock);
}

/// End the schedule: join every virtual thread into the scheduler and drop
/// the virtual slots.
pub fn end_schedule() {
    if !active() {
        return;
    }
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    let sched = st.sched_slot;
    let virtuals = std::mem::take(&mut st.virtuals);
    for slot in virtuals {
        let clock = st.slots[slot].clock.clone();
        join(&mut st.slots[sched].clock, &clock);
    }
    st.current_virtual = None;
}

// ---- traced wrappers ----

/// A value whose reads and writes feed the detector under a named cell.
#[derive(Debug)]
pub struct Traced<T> {
    cell: String,
    value: T,
}

impl<T> Traced<T> {
    pub fn new(cell: impl Into<String>, value: T) -> Self {
        Traced {
            cell: cell.into(),
            value,
        }
    }

    /// Read access (recorded).
    #[track_caller]
    pub fn read(&self) -> &T {
        on_read(&self.cell);
        &self.value
    }

    /// Write access (recorded).
    #[track_caller]
    pub fn write(&mut self) -> &mut T {
        on_write(&self.cell);
        &mut self.value
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

/// A mutex whose acquire/release events feed the detector's clocks and the
/// lock witness.
#[derive(Debug, Default)]
pub struct TracedMutex<T> {
    label: String,
    inner: Mutex<T>,
}

/// Guard for [`TracedMutex`]; releases (and records) on drop.
pub struct TracedMutexGuard<'a, T> {
    label: &'a str,
    guard: MutexGuard<'a, T>,
}

impl<T> TracedMutex<T> {
    pub fn new(label: impl Into<String>, value: T) -> Self {
        TracedMutex {
            label: label.into(),
            inner: Mutex::new(value),
        }
    }

    #[track_caller]
    pub fn lock(&self) -> TracedMutexGuard<'_, T> {
        // Acquire first, record second: the recorded acquire must observe
        // the release clock of whoever actually held the mutex last.
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        lock_acquired(&self.label);
        TracedMutexGuard {
            label: &self.label,
            guard,
        }
    }
}

impl<T> std::ops::Deref for TracedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TracedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TracedMutexGuard<'_, T> {
    fn drop(&mut self) {
        lock_released(self.label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{run_seeded, Actor};

    #[test]
    fn unordered_write_write_is_a_race_and_seed_is_embedded() {
        let det = install("seed=7");
        let mut actors: Vec<Actor> = vec![
            Box::new(|| {
                on_write("cell");
                false
            }),
            Box::new(|| {
                on_write("cell");
                false
            }),
        ];
        run_seeded(7, &mut actors);
        let report = det.finish();
        assert_eq!(report.races.len(), 1, "{:?}", report.races);
        assert_eq!(report.races[0].kind, "write-write");
        assert_eq!(report.races[0].seed, "seed=7");
        assert!(report.races[0].prior_path.contains("race.rs"));
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let det = install("seed=8");
        for _ in 0..2 {
            let mut actors: Vec<Actor> = (0..2)
                .map(|_| {
                    Box::new(|| {
                        lock_acquired("m");
                        on_write("cell-locked");
                        lock_released("m");
                        false
                    }) as Actor
                })
                .collect();
            run_seeded(8, &mut actors);
        }
        let report = det.finish();
        assert!(report.races.is_empty(), "{:?}", report.races);
        assert!(report.events > 0);
    }

    #[test]
    fn publish_observe_orders_across_virtuals() {
        let det = install("seed=9");
        // Actor 0 writes then publishes; actor 1 observes before reading.
        // The scheduler may still run 1's first step before 0's, so actor 1
        // spins (stays not-done) until the channel carries 0's clock.
        let flag = std::rc::Rc::new(std::cell::Cell::new(false));
        let flag2 = std::rc::Rc::clone(&flag);
        let mut actors: Vec<Actor> = vec![
            Box::new(move || {
                on_write("published-cell");
                publish("chan");
                flag2.set(true);
                false
            }),
            Box::new(move || {
                if !flag.get() {
                    return true; // not ready: stay live, try again later
                }
                observe("chan");
                on_read("published-cell");
                false
            }),
        ];
        run_seeded(9, &mut actors);
        let report = det.finish();
        assert!(report.races.is_empty(), "{:?}", report.races);
    }

    #[test]
    fn witness_records_nesting_and_detects_reversal() {
        let det = install("seed=10");
        let a = TracedMutex::new("a", 0u32);
        let b = TracedMutex::new("b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let report = det.finish();
        assert!(report.witness.iter().any(|e| e.from == "a" && e.to == "b"));
        assert!(report.witness.iter().any(|e| e.from == "b" && e.to == "a"));
        let cyc = report.witness_cycle().expect("reversed order is a cycle");
        assert_eq!(cyc, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn consistent_order_has_no_witness_cycle() {
        let det = install("seed=11");
        let a = TracedMutex::new("a", 0u32);
        let b = TracedMutex::new("b", 0u32);
        for _ in 0..2 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let report = det.finish();
        assert!(report.witness_cycle().is_none());
    }

    #[test]
    fn os_threads_register_and_sync_via_channels() {
        let det = install("seed=12");
        let traced = TracedMutex::new("shared", Traced::new("shared-cell", 0u32));
        publish("spawn");
        std::thread::scope(|s| {
            for t in 0..2 {
                let traced = &traced;
                s.spawn(move || {
                    register_thread(&format!("worker-{t}"));
                    observe("spawn");
                    let mut g = traced.lock();
                    *g.write() += 1;
                    drop(g);
                    publish("join");
                });
            }
        });
        observe("join");
        assert_eq!(*traced.lock().read(), 2);
        let report = det.finish();
        report.assert_no_races();
        assert!(report.events > 0);
    }

    #[test]
    fn detector_inactive_hooks_are_noops() {
        assert!(!active());
        on_write("nothing");
        lock_acquired("nothing");
        lock_released("nothing");
        assert!(races().is_empty());
    }
}
