//! Case runner and shrink loop behind the [`property!`](crate::property) macro.

use crate::rng::{mix, Rng};
use crate::strategy::Strategy;
use std::panic::{self, AssertUnwindSafe};

/// Cases per property unless overridden with `#[cases = N]`.
pub const DEFAULT_CASES: u32 = 64;

/// Base seed for case derivation; override with `OJV_TESTKIT_SEED` to
/// explore a different part of the input space.
const BASE_SEED: u64 = 0x00D1_CE07_1A25_0007;

fn base_seed() -> u64 {
    match std::env::var("OJV_TESTKIT_SEED") {
        Ok(s) => s.parse().unwrap_or(BASE_SEED),
        Err(_) => BASE_SEED,
    }
}

fn run_case<V>(f: &impl Fn(V), value: V) -> Result<(), String> {
    match panic::catch_unwind(AssertUnwindSafe(|| f(value))) {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `cases` generated inputs through `f`; on failure, greedily shrink to
/// a minimal failing input and panic with a repro report.
///
/// Each case's RNG is seeded from `mix(base_seed, case_index)`, so failures
/// reproduce by index regardless of how many cases earlier properties ran.
pub fn run_property<S: Strategy>(name: &str, cases: u32, strat: S, f: impl Fn(S::Value)) {
    let seed = base_seed();
    for case in 0..cases {
        let mut rng = Rng::seed_from_u64(mix(seed, case as u64));
        let value = strat.generate(&mut rng);
        if let Err(original_msg) = run_case(&f, value.clone()) {
            let minimal = shrink_failure(&strat, &f, value);
            panic!(
                "property `{name}` failed (case {case}/{cases}, seed {seed}).\n\
                 minimal failing input: {minimal:#?}\n\
                 original failure: {original_msg}\n\
                 reproduce with OJV_TESTKIT_SEED={seed}"
            );
        }
    }
}

/// Greedy shrink: re-test candidates from `Strategy::shrink`, recursing on
/// the first that still fails, within a fixed budget. The default panic hook
/// is silenced for the duration so shrink attempts don't spam stderr.
fn shrink_failure<S: Strategy>(strat: &S, f: &impl Fn(S::Value), failing: S::Value) -> S::Value {
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut current = failing;
    let mut budget = 1000usize;
    'outer: while budget > 0 {
        for candidate in strat.shrink(&current) {
            budget -= 1;
            if run_case(f, candidate.clone()).is_err() {
                current = candidate;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }

    panic::set_hook(prev_hook);
    current
}

/// Define a property test. Each `arg in strategy` pair binds one generated
/// value; the body runs once per case and fails the test by panicking
/// (e.g. through `assert!`).
///
/// ```
/// ojv_testkit::property! {
///     #[cases = 16]
///     fn reverse_twice_is_identity(v in ojv_testkit::vec_of(0i64..10, 0..8)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         assert_eq!(v, w);
///     }
/// }
/// ```
#[macro_export]
macro_rules! property {
    ($(
        $(#[doc = $doc:expr])*
        $(#[cases = $cases:expr])?
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            #[allow(unused_assignments, unused_mut)]
            let mut cases = $crate::check::DEFAULT_CASES;
            $(cases = $cases;)?
            $(let $arg = $strat;)+
            $crate::check::run_property(
                stringify!($name),
                cases,
                ($(&$arg,)+),
                |($($arg,)+)| $body,
            );
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::vec_of;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_property("count", 10, (&(0i64..5),), |(_v,)| {
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_input() {
        // Fails for v >= 3; minimum failing value is 3.
        let result = panic::catch_unwind(|| {
            let prev_hook = panic::take_hook();
            panic::set_hook(Box::new(|_| {}));
            let r = panic::catch_unwind(|| {
                run_property("ge3", 64, (&(0i64..100),), |(v,)| {
                    assert!(v < 3, "too big: {v}");
                });
            });
            panic::set_hook(prev_hook);
            r
        })
        .unwrap();
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => panic_message(payload.as_ref()),
        };
        assert!(
            msg.contains("minimal failing input: (\n    3,\n)")
                || msg.contains("minimal failing input: (3,)"),
            "shrink did not reach 3: {msg}"
        );
    }

    #[test]
    fn vec_shrink_finds_short_witness() {
        // Fails whenever the vector contains a 4; minimal witness is [4].
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let result = panic::catch_unwind(|| {
            run_property("has4", 64, (&vec_of(0i64..5, 0..8),), |(v,)| {
                assert!(!v.contains(&4), "contains 4: {v:?}");
            });
        });
        panic::set_hook(prev_hook);
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => panic_message(payload.as_ref()),
        };
        assert!(
            msg.contains("4,\n    ],") || msg.contains("[4]"),
            "unexpected minimal witness: {msg}"
        );
    }

    property! {
        #[cases = 32]
        fn macro_smoke_test(a in 0i64..50, b in 0i64..50) {
            assert_eq!(a + b, b + a);
        }
    }
}
