//! Deterministic PRNG: a SplitMix64 mixer for seed derivation and an
//! xorshift128+ stream generator with a rand-compatible sampling surface.

use std::ops::{Range, RangeInclusive};

/// SplitMix64-style mixer for deriving independent seeds from a base seed
/// and a stream tag. Identical inputs always give identical outputs, across
/// platforms and releases — refresh streams and test cases key off this.
pub fn mix(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xorshift128+ generator seeded through SplitMix64 (the seeding procedure
/// recommended by the xorshift authors: never seed a xorshift state with
/// correlated words).
#[derive(Debug, Clone)]
pub struct Rng {
    s0: u64,
    s1: u64,
}

impl Rng {
    /// Seed deterministically from a single word.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix(sm, 0)
        };
        let s0 = next();
        let s1 = next();
        // The all-zero state is a fixed point of xorshift; SplitMix64 cannot
        // produce two zero outputs in a row, but guard anyway.
        if s0 == 0 && s1 == 0 {
            Rng { s0: 1, s1: 2 }
        } else {
            Rng { s0, s1 }
        }
    }

    pub fn new(seed: u64) -> Self {
        Self::seed_from_u64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)` via the widening-multiply trick (no modulo bias
    /// worth caring about at 64→128 bits).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a `Range` or `RangeInclusive` (integers or f64),
    /// mirroring `rand::Rng::gen_range`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// True with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for (nearly) the full u64/i128 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let v = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            let v = rng.gen_range(-999.99f64..9999.99);
            assert!((-999.99..9999.99).contains(&v));
            let d = rng.gen_range(1i32..=121);
            assert!((1..=121).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn mix_matches_known_values() {
        // Pin the mixer: refresh streams and golden tests depend on it.
        assert_eq!(mix(0, 0), 0);
        assert_ne!(mix(42, 1), mix(42, 2));
        assert_eq!(mix(42, 1), mix(42, 1));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should not produce the identity");
    }
}
