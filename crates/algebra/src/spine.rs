//! Left-spine decomposition of delta plans for cross-view sharing.
//!
//! After left-deep conversion (§4.1) every primary-delta plan is a chain:
//! a leaf (usually `ΔT`) followed by joins whose *left* input is the chain
//! so far, interleaved with the unary operators (`σ`, `λ`, `δ`). The batch
//! maintenance layer factors out work shared between views by comparing
//! these chains step by step: two views whose spines agree on a prefix can
//! evaluate that prefix once and fan the rows out into their remainders.
//!
//! [`Spine::of`] peels an arbitrary plan into `leaf ∘ step₁ ∘ … ∘ stepₙ`
//! (bushy right subtrees stay whole inside their [`SpineStep::Join`]), and
//! [`Spine::prefix_expr`] reassembles any prefix back into an [`Expr`] so
//! unshared chains still run through the ordinary executor — including its
//! narrow-left delta index join fast path.

use crate::expr::{Expr, JoinKind};
use crate::fingerprint::{fold_expr, fold_pred, Fingerprinter};
use crate::pred::Pred;
use crate::table_set::TableSet;

/// One step of a left spine, applied to the rows produced by the prefix
/// before it.
#[derive(Debug, Clone, PartialEq)]
pub enum SpineStep {
    /// `prefix ⋈ right`; `right` is an arbitrary (usually leaf) subtree.
    Join {
        kind: JoinKind,
        pred: Pred,
        right: Expr,
    },
    /// `σ[pred](prefix)`.
    Select(Pred),
    /// `λ`: null out `null_tables` on rows failing `pred`.
    NullIf { null_tables: TableSet, pred: Pred },
    /// `δ↓` duplicate/subsumption cleanup.
    CleanDup,
}

impl SpineStep {
    /// Stable structural hash of this step (join right subtrees included).
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprinter::new();
        match self {
            SpineStep::Join { kind, pred, right } => {
                f.write_u8(0x51);
                f.write_u8(match kind {
                    JoinKind::Inner => 1,
                    JoinKind::LeftOuter => 2,
                    JoinKind::RightOuter => 3,
                    JoinKind::FullOuter => 4,
                    JoinKind::LeftSemi => 5,
                    JoinKind::LeftAnti => 6,
                });
                fold_pred(&mut f, pred);
                fold_expr(&mut f, right);
            }
            SpineStep::Select(pred) => {
                f.write_u8(0x52);
                fold_pred(&mut f, pred);
            }
            SpineStep::NullIf { null_tables, pred } => {
                f.write_u8(0x53);
                f.write_u64(u64::from(null_tables.len() as u32));
                for t in null_tables.iter() {
                    f.write_u8(t.0);
                }
                fold_pred(&mut f, pred);
            }
            SpineStep::CleanDup => f.write_u8(0x54),
        }
        f.finish()
    }

    /// The source set after applying this step to rows with sources `s`.
    pub fn apply_sources(&self, s: TableSet) -> TableSet {
        match self {
            SpineStep::Join { kind, right, .. } => match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => s,
                _ => s.union(right.sources()),
            },
            SpineStep::Select(_) | SpineStep::NullIf { .. } | SpineStep::CleanDup => s,
        }
    }

    /// Re-wrap `input` under this step, rebuilding the original operator.
    pub fn reapply(&self, input: Expr) -> Expr {
        match self {
            SpineStep::Join { kind, pred, right } => {
                Expr::join(*kind, pred.clone(), input, right.clone())
            }
            SpineStep::Select(pred) => Expr::select(pred.clone(), input),
            SpineStep::NullIf { null_tables, pred } => Expr::NullIf {
                null_tables: *null_tables,
                pred: pred.clone(),
                input: Box::new(input),
            },
            SpineStep::CleanDup => Expr::CleanDup(Box::new(input)),
        }
    }
}

/// A plan decomposed into its leftmost leaf and the chain of steps above it.
#[derive(Debug, Clone, PartialEq)]
pub struct Spine {
    pub leaf: Expr,
    /// Steps in application order: `steps[0]` applies directly to `leaf`.
    pub steps: Vec<SpineStep>,
}

impl Spine {
    /// Decompose `expr`. Total: `spine.prefix_expr(spine.steps.len())`
    /// rebuilds a tree structurally equal to the input.
    pub fn of(expr: &Expr) -> Spine {
        let mut steps = Vec::new();
        let mut cur = expr;
        loop {
            match cur {
                Expr::Select(p, input) => {
                    steps.push(SpineStep::Select(p.clone()));
                    cur = input;
                }
                Expr::Join {
                    kind,
                    pred,
                    left,
                    right,
                } => {
                    steps.push(SpineStep::Join {
                        kind: *kind,
                        pred: pred.clone(),
                        right: (**right).clone(),
                    });
                    cur = left;
                }
                Expr::NullIf {
                    null_tables,
                    pred,
                    input,
                } => {
                    steps.push(SpineStep::NullIf {
                        null_tables: *null_tables,
                        pred: pred.clone(),
                    });
                    cur = input;
                }
                Expr::CleanDup(input) => {
                    steps.push(SpineStep::CleanDup);
                    cur = input;
                }
                Expr::Table(_) | Expr::Delta(_) | Expr::OldState(_) | Expr::Empty => {
                    steps.reverse();
                    return Spine {
                        leaf: cur.clone(),
                        steps,
                    };
                }
            }
        }
    }

    /// Fingerprint of the leaf alone.
    pub fn leaf_fingerprint(&self) -> u64 {
        crate::fingerprint::fingerprint_expr(&self.leaf)
    }

    /// Rebuild the expression for `leaf ∘ steps[..n]`.
    pub fn prefix_expr(&self, n: usize) -> Expr {
        let mut e = self.leaf.clone();
        for step in &self.steps[..n] {
            e = step.reapply(e);
        }
        e
    }

    /// Source set of the prefix `leaf ∘ steps[..n]`.
    pub fn prefix_sources(&self, n: usize) -> TableSet {
        let mut s = self.leaf.sources();
        for step in &self.steps[..n] {
            s = step.apply_sources(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_expr;
    use crate::pred::{Atom, ColRef};
    use crate::table_set::TableId;

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn p(a: u8, b: u8) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), 0), ColRef::new(t(b), 0)))
    }

    fn chain() -> Expr {
        // δ↓(λ(σ((ΔT0 ⋈ T1) ⟕ T2)))
        let join1 = Expr::inner(p(0, 1), Expr::Delta(t(0)), Expr::table(t(1)));
        let join2 = Expr::left_outer(p(1, 2), join1, Expr::table(t(2)));
        let sel = Expr::select(p(0, 2), join2);
        let nullif = Expr::NullIf {
            null_tables: TableSet::singleton(t(2)),
            pred: p(1, 2),
            input: Box::new(sel),
        };
        Expr::CleanDup(Box::new(nullif))
    }

    #[test]
    fn decompose_and_reassemble_round_trips() {
        let e = chain();
        let s = Spine::of(&e);
        assert_eq!(s.leaf, Expr::Delta(t(0)));
        assert_eq!(s.steps.len(), 5);
        let rebuilt = s.prefix_expr(s.steps.len());
        assert_eq!(rebuilt, e);
        assert_eq!(fingerprint_expr(&rebuilt), fingerprint_expr(&e));
    }

    #[test]
    fn prefix_sources_track_joins_and_semijoins() {
        let semi = Expr::join(
            JoinKind::LeftAnti,
            p(0, 1),
            Expr::inner(p(0, 2), Expr::Delta(t(0)), Expr::table(t(2))),
            Expr::table(t(1)),
        );
        let s = Spine::of(&semi);
        assert_eq!(s.prefix_sources(0), TableSet::singleton(t(0)));
        assert_eq!(s.prefix_sources(1), TableSet::from_iter([t(0), t(2)]));
        // Anti-join keeps left sources only.
        assert_eq!(s.prefix_sources(2), TableSet::from_iter([t(0), t(2)]));
    }

    #[test]
    fn shared_prefix_has_equal_step_fingerprints() {
        let a = Spine::of(&chain());
        let b = Spine::of(&chain());
        assert_eq!(a.leaf_fingerprint(), b.leaf_fingerprint());
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.fingerprint(), y.fingerprint());
        }
        // Divergent final step ⇒ different fingerprint there.
        let mut c = chain();
        if let Expr::CleanDup(inner) = &mut c {
            if let Expr::NullIf { pred, .. } = inner.as_mut() {
                *pred = p(0, 1);
            }
        }
        let cs = Spine::of(&c);
        assert_eq!(
            a.steps[..3]
                .iter()
                .map(|s| s.fingerprint())
                .collect::<Vec<_>>(),
            cs.steps[..3]
                .iter()
                .map(|s| s.fingerprint())
                .collect::<Vec<_>>()
        );
        assert_ne!(a.steps[3].fingerprint(), cs.steps[3].fingerprint());
    }
}
