//! Canonical fingerprints of delta-expression plans.
//!
//! The batch maintenance layer (PR 5) shares work between views by comparing
//! plan structure, so it needs a hash of an [`Expr`] tree that is *stable*
//! across runs and across structurally-equal clones. `Expr`/`Pred`/`Atom`
//! deliberately do not implement `Hash` (atoms carry [`Datum`] literals,
//! which include `f64`), so this module folds the tree into a 64-bit FNV-1a
//! digest by hand: every variant contributes a discriminant tag and its
//! fields in a fixed order, floats are hashed by their IEEE-754 bit pattern,
//! and strings by their UTF-8 bytes.
//!
//! Two expressions have equal fingerprints iff they are structurally equal
//! (modulo the astronomically unlikely 64-bit collision); the batch layer
//! additionally compares layout signatures before trusting a match, so a
//! collision can at worst group two views whose wide-row schemas already
//! agree.

use ojv_rel::Datum;

use crate::expr::{Expr, JoinKind};
use crate::pred::{Atom, CmpOp, ColRef, Pred};
use crate::table_set::TableSet;

/// Incremental FNV-1a 64-bit hasher. Not a general-purpose `Hasher`:
/// deliberately tiny, allocation-free, and with a byte-for-byte specified
/// encoding so fingerprints stay stable across platforms and releases.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    pub fn write_str(&mut self, s: &str) {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprint of a whole operator tree.
pub fn fingerprint_expr(e: &Expr) -> u64 {
    let mut f = Fingerprinter::new();
    fold_expr(&mut f, e);
    f.finish()
}

/// Fingerprint of a predicate alone (used for spine-step hashing).
pub fn fingerprint_pred(p: &Pred) -> u64 {
    let mut f = Fingerprinter::new();
    fold_pred(&mut f, p);
    f.finish()
}

pub fn fold_expr(f: &mut Fingerprinter, e: &Expr) {
    match e {
        Expr::Table(t) => {
            f.write_u8(0x01);
            f.write_u8(t.0);
        }
        Expr::Delta(t) => {
            f.write_u8(0x02);
            f.write_u8(t.0);
        }
        Expr::OldState(t) => {
            f.write_u8(0x03);
            f.write_u8(t.0);
        }
        Expr::Empty => f.write_u8(0x04),
        Expr::Select(p, input) => {
            f.write_u8(0x05);
            fold_pred(f, p);
            fold_expr(f, input);
        }
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            f.write_u8(0x06);
            f.write_u8(join_kind_tag(*kind));
            fold_pred(f, pred);
            fold_expr(f, left);
            fold_expr(f, right);
        }
        Expr::NullIf {
            null_tables,
            pred,
            input,
        } => {
            f.write_u8(0x07);
            fold_table_set(f, *null_tables);
            fold_pred(f, pred);
            fold_expr(f, input);
        }
        Expr::CleanDup(input) => {
            f.write_u8(0x08);
            fold_expr(f, input);
        }
    }
}

pub fn fold_pred(f: &mut Fingerprinter, p: &Pred) {
    f.write_usize(p.atoms().len());
    for a in p.atoms() {
        fold_atom(f, a);
    }
}

fn fold_atom(f: &mut Fingerprinter, a: &Atom) {
    match a {
        Atom::Cols(x, op, y) => {
            f.write_u8(0x11);
            fold_col(f, *x);
            f.write_u8(cmp_tag(*op));
            fold_col(f, *y);
        }
        Atom::Const(c, op, d) => {
            f.write_u8(0x12);
            fold_col(f, *c);
            f.write_u8(cmp_tag(*op));
            fold_datum(f, d);
        }
        Atom::Between(c, lo, hi) => {
            f.write_u8(0x13);
            fold_col(f, *c);
            fold_datum(f, lo);
            fold_datum(f, hi);
        }
    }
}

fn fold_col(f: &mut Fingerprinter, c: ColRef) {
    f.write_u8(c.table.0);
    f.write_usize(c.col);
}

fn fold_table_set(f: &mut Fingerprinter, ts: TableSet) {
    f.write_usize(ts.len());
    for t in ts.iter() {
        f.write_u8(t.0);
    }
}

fn fold_datum(f: &mut Fingerprinter, d: &Datum) {
    match d {
        Datum::Null => f.write_u8(0x21),
        Datum::Bool(b) => {
            f.write_u8(0x22);
            f.write_u8(*b as u8);
        }
        Datum::Int(i) => {
            f.write_u8(0x23);
            f.write_bytes(&i.to_le_bytes());
        }
        // Bit pattern, not value: -0.0 and 0.0 fingerprint differently, and
        // NaN payloads are preserved — the goal is structural identity of
        // the *plan text*, not numeric equivalence.
        Datum::Float(x) => {
            f.write_u8(0x24);
            f.write_bytes(&x.to_bits().to_le_bytes());
        }
        Datum::Str(s) => {
            f.write_u8(0x25);
            f.write_str(s);
        }
        Datum::Date(d) => {
            f.write_u8(0x26);
            f.write_bytes(&d.to_le_bytes());
        }
    }
}

fn join_kind_tag(k: JoinKind) -> u8 {
    match k {
        JoinKind::Inner => 0x31,
        JoinKind::LeftOuter => 0x32,
        JoinKind::RightOuter => 0x33,
        JoinKind::FullOuter => 0x34,
        JoinKind::LeftSemi => 0x35,
        JoinKind::LeftAnti => 0x36,
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0x41,
        CmpOp::Ne => 0x42,
        CmpOp::Lt => 0x43,
        CmpOp::Le => 0x44,
        CmpOp::Gt => 0x45,
        CmpOp::Ge => 0x46,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_set::TableId;

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn eq_pred(a: u8, b: u8) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), 0), ColRef::new(t(b), 0)))
    }

    #[test]
    fn structural_equality_means_equal_fingerprints() {
        let e1 = Expr::left_outer(eq_pred(0, 1), Expr::Delta(t(0)), Expr::table(t(1)));
        let e2 = e1.clone();
        assert_eq!(fingerprint_expr(&e1), fingerprint_expr(&e2));
    }

    #[test]
    fn different_shapes_differ() {
        let base = Expr::left_outer(eq_pred(0, 1), Expr::Delta(t(0)), Expr::table(t(1)));
        let other_kind = Expr::inner(eq_pred(0, 1), Expr::Delta(t(0)), Expr::table(t(1)));
        let other_leaf = Expr::left_outer(eq_pred(0, 1), Expr::table(t(0)), Expr::table(t(1)));
        let fp = fingerprint_expr(&base);
        assert_ne!(fp, fingerprint_expr(&other_kind));
        assert_ne!(fp, fingerprint_expr(&other_leaf));
    }

    #[test]
    fn literal_values_matter() {
        let mk = |v: i64| {
            Expr::select(
                Pred::atom(Atom::Const(ColRef::new(t(0), 2), CmpOp::Lt, Datum::Int(v))),
                Expr::Delta(t(0)),
            )
        };
        assert_ne!(fingerprint_expr(&mk(5)), fingerprint_expr(&mk(6)));
    }

    #[test]
    fn float_literals_hash_by_bits() {
        let mk = |v: f64| {
            Expr::select(
                Pred::atom(Atom::Const(
                    ColRef::new(t(0), 0),
                    CmpOp::Lt,
                    Datum::Float(v),
                )),
                Expr::Delta(t(0)),
            )
        };
        assert_ne!(fingerprint_expr(&mk(0.0)), fingerprint_expr(&mk(-0.0)));
        // Same bit pattern ⇒ same fingerprint, even for NaN.
        assert_eq!(
            fingerprint_expr(&mk(f64::NAN)),
            fingerprint_expr(&mk(f64::NAN))
        );
    }

    #[test]
    fn string_length_prefix_disambiguates() {
        let mk = |s: &str, u: &str| {
            Expr::select(
                Pred::new(vec![
                    Atom::Const(ColRef::new(t(0), 0), CmpOp::Eq, Datum::str(s)),
                    Atom::Const(ColRef::new(t(0), 1), CmpOp::Eq, Datum::str(u)),
                ]),
                Expr::Delta(t(0)),
            )
        };
        assert_ne!(
            fingerprint_expr(&mk("ab", "c")),
            fingerprint_expr(&mk("a", "bc"))
        );
    }

    #[test]
    fn null_if_tables_and_pred_are_folded() {
        let mk = |ts: TableSet| Expr::NullIf {
            null_tables: ts,
            pred: eq_pred(0, 1),
            input: Box::new(Expr::Delta(t(0))),
        };
        assert_ne!(
            fingerprint_expr(&mk(TableSet::singleton(t(1)))),
            fingerprint_expr(&mk(TableSet::from_iter([t(1), t(2)])))
        );
    }
}
