//! Join-disjunctive normal form (paper §2.2).
//!
//! Any SPOJ expression `E` over tables `U` can be written as a minimum union
//! of *terms* `E = E_1 ⊕ … ⊕ E_n`, where each term is a selection over an
//! inner (cross) join of a subset of `U`:
//! `E_i = σ_{p_i}(T_{i1} × … × T_{im})`.
//!
//! The normalizer traverses the operator tree once, bottom-up
//! (Galindo-Legaria's algorithm as summarized in the paper's Example 2):
//! joins "multiply" the term sets of their operands, keeping a combined term
//! only when every predicate conjunct references tables present in the
//! combination (null-rejecting predicates eliminate the rest), and outer
//! joins additionally preserve the terms of the protected side(s).
//!
//! Foreign keys further prune terms whose net contribution is provably empty
//! (the `{orders, lineitem}` term of the paper's Example 1).

use std::fmt;

use crate::expr::{Expr, JoinKind};
use crate::fk::FkEdge;
use crate::pred::{Atom, CmpOp, Pred};
use crate::table_set::TableSet;

/// One term of the normal form: `σ_{pred}(× tables)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// The term's source tables `T_i`.
    pub tables: TableSet,
    /// The conjunction `p_i` (a subset of the view's selection and join
    /// conjuncts).
    pub pred: Pred,
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ[{}]({})", self.pred, self.tables)
    }
}

/// Normalize without foreign-key pruning.
///
/// # Panics
/// Panics if `expr` is not a user SPOJ expression ([`Expr::is_user_spoj`]).
pub fn normalize_unpruned(expr: &Expr) -> Vec<Term> {
    assert!(
        expr.is_user_spoj(),
        "normalization is defined for user SPOJ expressions"
    );
    norm(expr)
}

/// Normalize and prune terms whose net contribution is empty due to
/// foreign-key constraints.
pub fn normalize(expr: &Expr, fks: &[FkEdge]) -> Vec<Term> {
    let terms = normalize_unpruned(expr);
    prune_fk_terms(terms, fks)
}

fn norm(expr: &Expr) -> Vec<Term> {
    match expr {
        Expr::Table(t) => vec![Term {
            tables: TableSet::singleton(*t),
            pred: Pred::true_(),
        }],
        Expr::Select(p, input) => {
            let mut out = Vec::new();
            'term: for mut term in norm(input) {
                for atom in p.atoms() {
                    if atom.tables().is_subset_of(term.tables) {
                        term.pred = term.pred.and(&Pred::atom(atom.clone()));
                    } else {
                        // The atom references a table the term is
                        // null-extended on; being null-rejecting, it
                        // eliminates the term.
                        continue 'term;
                    }
                }
                out.push(term);
            }
            out
        }
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            let lt = norm(left);
            let rt = norm(right);
            let mut out = Vec::new();
            // "Multiplication": every combination of a left and a right term
            // that the (null-rejecting) join predicate can accept.
            for a in &lt {
                'combo: for b in &rt {
                    let tables = a.tables.union(b.tables);
                    for atom in pred.atoms() {
                        if !atom.tables().is_subset_of(tables) {
                            continue 'combo;
                        }
                    }
                    out.push(Term {
                        tables,
                        pred: a.pred.and(&b.pred).and(pred),
                    });
                }
            }
            // Outer joins preserve the protected side(s).
            match kind {
                JoinKind::Inner => {}
                JoinKind::LeftOuter => out.extend(lt),
                JoinKind::RightOuter => out.extend(rt),
                JoinKind::FullOuter => {
                    out.extend(lt);
                    out.extend(rt);
                }
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    unreachable!("semijoins are rejected by is_user_spoj")
                }
            }
            debug_assert_distinct_sources(&out);
            out
        }
        other => unreachable!("normalization over non-SPOJ node {other:?}"),
    }
}

fn debug_assert_distinct_sources(terms: &[Term]) {
    if cfg!(debug_assertions) {
        for (i, a) in terms.iter().enumerate() {
            for b in &terms[i + 1..] {
                debug_assert_ne!(
                    a.tables, b.tables,
                    "normal form produced two terms with source set {}",
                    a.tables
                );
            }
        }
    }
}

/// Remove terms whose net contribution is empty because of a foreign key.
///
/// A term `t` can be dropped when some usable FK `child → parent` has
/// `child ∈ t.tables`, `parent ∉ t.tables`, and the term `t ∪ {parent}`
/// exists with predicate exactly `t.pred ∧ fk-join-atoms`: then every tuple
/// of `t` joins its (unique, guaranteed-present) parent, is subsumed by the
/// corresponding tuple of the parent term, and never surfaces in the view.
/// An extra predicate on `parent` in the parent term (like the
/// `p_retailprice < 2000` join conjunct of the paper's V3) blocks the
/// pruning, because parents failing it leave the child tuples unsubsumed.
pub fn prune_fk_terms(terms: Vec<Term>, fks: &[FkEdge]) -> Vec<Term> {
    let keep: Vec<bool> = terms.iter().map(|t| !fk_prunable(t, &terms, fks)).collect();
    terms
        .into_iter()
        .zip(keep)
        .filter_map(|(t, k)| if k { Some(t) } else { None })
        .collect()
}

fn fk_prunable(term: &Term, all: &[Term], fks: &[FkEdge]) -> bool {
    for fk in fks {
        if !fk.usable() || !term.tables.contains(fk.child) || term.tables.contains(fk.parent) {
            continue;
        }
        let parent_set = term.tables.insert(fk.parent);
        let Some(parent_term) = all.iter().find(|t| t.tables == parent_set) else {
            continue;
        };
        // parent_term.pred must equal term.pred + the FK join atoms.
        let mut expected: Vec<Atom> = term.pred.atoms().to_vec();
        expected.extend(fk.join_atoms());
        if atom_multiset_eq(parent_term.pred.atoms(), &expected) {
            return true;
        }
    }
    false
}

/// Multiset equality of atom lists, treating `a = b` and `b = a` as equal.
fn atom_multiset_eq(a: &[Atom], b: &[Atom]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut used = vec![false; b.len()];
    'outer: for x in a {
        for (i, y) in b.iter().enumerate() {
            if !used[i] && atom_eq_sym(x, y) {
                used[i] = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

fn atom_eq_sym(a: &Atom, b: &Atom) -> bool {
    match (a, b) {
        (Atom::Cols(a1, CmpOp::Eq, a2), Atom::Cols(b1, CmpOp::Eq, b2)) => {
            (a1 == b1 && a2 == b2) || (a1 == b2 && a2 == b1)
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::ColRef;
    use crate::table_set::TableId;

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn eq(a: u8, ac: usize, b: u8, bc: usize) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), ac), ColRef::new(t(b), bc)))
    }

    fn sets(terms: &[Term]) -> Vec<TableSet> {
        let mut v: Vec<TableSet> = terms.iter().map(|t| t.tables).collect();
        v.sort();
        v
    }

    fn ts(ids: &[u8]) -> TableSet {
        TableSet::from_iter(ids.iter().map(|&i| t(i)))
    }

    /// The paper's running example V1 (Example 2):
    /// `(R fo S) lo (T fo U)` with predicates p(r,s), p(r,t), p(t,u).
    /// Tables: R=0, S=1, T=2, U=3.
    fn v1() -> Expr {
        Expr::left_outer(
            eq(0, 1, 2, 1), // p(r,t)
            Expr::full_outer(eq(0, 0, 1, 0), Expr::table(t(0)), Expr::table(t(1))),
            Expr::full_outer(eq(2, 0, 3, 0), Expr::table(t(2)), Expr::table(t(3))),
        )
    }

    #[test]
    fn v1_normal_form_matches_example_2() {
        let terms = normalize_unpruned(&v1());
        // Paper: TURS, TUR, TRS, TR, RS, R, S — i.e. with our ids:
        // {0,1,2,3}, {0,2,3}, {0,1,2}, {0,2}, {0,1}, {0}, {1}.
        assert_eq!(
            sets(&terms),
            vec![
                ts(&[0]),
                ts(&[1]),
                ts(&[0, 1]),
                ts(&[0, 2]),
                ts(&[0, 1, 2]),
                ts(&[0, 2, 3]),
                ts(&[0, 1, 2, 3]),
            ]
        );
        // Spot-check predicates: the {0,2} term carries exactly p(r,t).
        let tr = terms.iter().find(|x| x.tables == ts(&[0, 2])).unwrap();
        assert_eq!(tr.pred.atoms().len(), 1);
        // The full term carries all three predicates.
        let all = terms
            .iter()
            .find(|x| x.tables == ts(&[0, 1, 2, 3]))
            .unwrap();
        assert_eq!(all.pred.atoms().len(), 3);
    }

    /// Example 1's oj_view: `part fo (orders lo lineitem)`.
    /// part=0, orders=1, lineitem=2; FKs lineitem→part and lineitem→orders.
    fn oj_view() -> Expr {
        Expr::full_outer(
            eq(0, 0, 2, 1), // p_partkey = l_partkey
            Expr::table(t(0)),
            Expr::left_outer(eq(1, 0, 2, 0), Expr::table(t(1)), Expr::table(t(2))),
        )
    }

    fn oj_view_fks() -> Vec<FkEdge> {
        vec![
            FkEdge {
                child: t(2),
                child_cols: vec![1],
                parent: t(0),
                parent_cols: vec![0],
                child_cols_non_null: true,
                cascade_delete: false,
                deferrable: false,
            },
            FkEdge {
                child: t(2),
                child_cols: vec![0],
                parent: t(1),
                parent_cols: vec![0],
                child_cols_non_null: true,
                cascade_delete: false,
                deferrable: false,
            },
        ]
    }

    #[test]
    fn oj_view_unpruned_has_four_terms() {
        let terms = normalize_unpruned(&oj_view());
        assert_eq!(
            sets(&terms),
            vec![ts(&[0]), ts(&[1]), ts(&[1, 2]), ts(&[0, 1, 2])]
        );
    }

    #[test]
    fn oj_view_fk_pruning_drops_orders_lineitem_term() {
        // Paper, Example 1: "the view may contain tuples of three types:
        // {part, orders, lineitem}, {orders}, and {part}".
        let terms = normalize(&oj_view(), &oj_view_fks());
        assert_eq!(sets(&terms), vec![ts(&[0]), ts(&[1]), ts(&[0, 1, 2])]);
    }

    #[test]
    fn fk_pruning_blocked_by_extra_parent_predicate() {
        // Like oj_view, but the join to part carries an extra selection on
        // part (the V3 situation): {orders,lineitem} must then survive.
        let view = Expr::full_outer(
            eq(0, 0, 2, 1).and(&Pred::atom(Atom::Const(
                ColRef::new(t(0), 2),
                CmpOp::Lt,
                ojv_rel::Datum::Int(2000),
            ))),
            Expr::table(t(0)),
            Expr::left_outer(eq(1, 0, 2, 0), Expr::table(t(1)), Expr::table(t(2))),
        );
        let terms = normalize(&view, &oj_view_fks());
        assert_eq!(
            sets(&terms),
            vec![ts(&[0]), ts(&[1]), ts(&[1, 2]), ts(&[0, 1, 2])]
        );
    }

    #[test]
    fn fk_pruning_requires_non_null_child_columns() {
        let mut fks = oj_view_fks();
        fks[0].child_cols_non_null = false;
        let terms = normalize(&oj_view(), &fks);
        assert_eq!(
            sets(&terms),
            vec![ts(&[0]), ts(&[1]), ts(&[1, 2]), ts(&[0, 1, 2])]
        );
    }

    #[test]
    fn select_eliminates_terms_null_extended_on_predicate_tables() {
        // σ_{p(t1)}(T0 lo T1): the {T0} term dies because p references T1.
        let view = Expr::select(
            Pred::atom(Atom::Const(
                ColRef::new(t(1), 1),
                CmpOp::Gt,
                ojv_rel::Datum::Int(0),
            )),
            Expr::left_outer(eq(0, 0, 1, 0), Expr::table(t(0)), Expr::table(t(1))),
        );
        let terms = normalize_unpruned(&view);
        assert_eq!(sets(&terms), vec![ts(&[0, 1])]);
    }

    #[test]
    fn inner_join_produces_single_term() {
        let view = Expr::inner(eq(0, 0, 1, 0), Expr::table(t(0)), Expr::table(t(1)));
        let terms = normalize_unpruned(&view);
        assert_eq!(sets(&terms), vec![ts(&[0, 1])]);
    }

    #[test]
    fn v2_normal_form_matches_example_11() {
        // V2 = σpc C fo (σpo O fo L), C=0, O=1, L=2.
        let pc = Pred::atom(Atom::Const(
            ColRef::new(t(0), 1),
            CmpOp::Gt,
            ojv_rel::Datum::Int(0),
        ));
        let po = Pred::atom(Atom::Const(
            ColRef::new(t(1), 1),
            CmpOp::Gt,
            ojv_rel::Datum::Int(0),
        ));
        let v2 = Expr::full_outer(
            eq(0, 0, 1, 2), // ck = ock
            Expr::select(pc, Expr::table(t(0))),
            Expr::full_outer(
                eq(1, 0, 2, 0), // ok = lok
                Expr::select(po, Expr::table(t(1))),
                Expr::table(t(2)),
            ),
        );
        let terms = normalize_unpruned(&v2);
        // Paper: {C,O,L}, {C,O}, {O,L}, {C}, {O}, {L} — listed here in
        // bitset order.
        assert_eq!(
            sets(&terms),
            vec![
                ts(&[0]),
                ts(&[1]),
                ts(&[0, 1]),
                ts(&[2]),
                ts(&[1, 2]),
                ts(&[0, 1, 2]),
            ]
        );
    }
}
