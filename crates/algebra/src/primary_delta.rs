//! Construction of the primary-delta expression `ΔV^D` (paper §4).
//!
//! Given the original view tree `V` and the updated table `T`, the paper's
//! algorithm produces an expression computing exactly the change to the
//! directly affected terms:
//!
//! 1. Commute joins along the path from `T` to the root so the input
//!    referencing `T` is always on the left.
//! 2. Along that path, convert full outer joins to left outer joins and
//!    right outer joins to inner joins — discarding all tuples null-extended
//!    on `T`, which can never belong to `V^D`.
//! 3. Substitute `ΔT` for `T`.
//!
//! Correctness rests on the delta-propagation rules for select, inner join
//! and left outer join listed in §4.

use crate::expr::{Expr, JoinKind};
use crate::table_set::TableId;

/// Derive the `ΔV^D` expression for an update of `updated`.
///
/// # Panics
/// Panics if `view` does not reference `updated` (the caller classifies such
/// updates as no-ops before getting here) or is not a user SPOJ tree.
pub fn derive_primary_delta(view: &Expr, updated: TableId) -> Expr {
    assert!(
        view.is_user_spoj(),
        "ΔV^D derivation needs a user SPOJ tree"
    );
    assert!(
        view.references(updated),
        "view does not reference {updated}"
    );
    transform(view, updated)
}

fn transform(expr: &Expr, t: TableId) -> Expr {
    match expr {
        Expr::Table(id) if *id == t => Expr::Delta(t),
        Expr::Select(p, input) => Expr::Select(p.clone(), Box::new(transform(input, t))),
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            // Commute so the side referencing T is on the left (step 1),
            // then weaken the operator (step 2).
            let (l, r, k) = if left.references(t) {
                (left.as_ref(), right.as_ref(), *kind)
            } else {
                (right.as_ref(), left.as_ref(), kind.commuted())
            };
            let k = match k {
                JoinKind::FullOuter => JoinKind::LeftOuter,
                JoinKind::RightOuter => JoinKind::Inner,
                other => other,
            };
            Expr::join(k, pred.clone(), transform(l, t), r.clone())
        }
        other => unreachable!("transform over non-SPOJ node {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Atom, ColRef, Pred};

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn eq(a: u8, b: u8) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), 0), ColRef::new(t(b), 0)))
    }

    /// V1 = (R fo S) lo (T fo U); R=0, S=1, T=2, U=3.
    fn v1() -> Expr {
        Expr::left_outer(
            eq(0, 2),
            Expr::full_outer(eq(0, 1), Expr::table(t(0)), Expr::table(t(1))),
            Expr::full_outer(eq(2, 3), Expr::table(t(2)), Expr::table(t(3))),
        )
    }

    /// Example 3 / Figure 2(d): updating T in V1 yields
    /// `ΔV1^D = (ΔT lo U) ⋈ (R fo S)`.
    #[test]
    fn v1_update_t_matches_example_3() {
        let d = derive_primary_delta(&v1(), t(2));
        let expected = Expr::inner(
            eq(0, 2),
            Expr::left_outer(eq(2, 3), Expr::Delta(t(2)), Expr::table(t(3))),
            Expr::full_outer(eq(0, 1), Expr::table(t(0)), Expr::table(t(1))),
        );
        assert_eq!(d, expected);
    }

    /// Updating R: the path stays on the left; the root lo is kept and the
    /// left fo becomes lo.
    #[test]
    fn v1_update_r() {
        let d = derive_primary_delta(&v1(), t(0));
        let expected = Expr::left_outer(
            eq(0, 2),
            Expr::left_outer(eq(0, 1), Expr::Delta(t(0)), Expr::table(t(1))),
            Expr::full_outer(eq(2, 3), Expr::table(t(2)), Expr::table(t(3))),
        );
        assert_eq!(d, expected);
    }

    /// Updating S: commute the left fo, and the root lo — S is in its left
    /// input after the inner commute, so the root join must flip to right
    /// outer... which then becomes inner? No: S is in the *left* input of
    /// the root (R fo S side), so the root lo survives as lo.
    #[test]
    fn v1_update_s() {
        let d = derive_primary_delta(&v1(), t(1));
        let expected = Expr::left_outer(
            eq(0, 2),
            Expr::left_outer(eq(0, 1), Expr::Delta(t(1)), Expr::table(t(0))),
            Expr::full_outer(eq(2, 3), Expr::table(t(2)), Expr::table(t(3))),
        );
        assert_eq!(d, expected);
    }

    /// Updating U: the path passes through the right input of the root lo,
    /// so the root is commuted to ro and then converted to inner.
    #[test]
    fn v1_update_u() {
        let d = derive_primary_delta(&v1(), t(3));
        let expected = Expr::inner(
            eq(0, 2),
            Expr::left_outer(eq(2, 3), Expr::Delta(t(3)), Expr::table(t(2))),
            Expr::full_outer(eq(0, 1), Expr::table(t(0)), Expr::table(t(1))),
        );
        assert_eq!(d, expected);
    }

    #[test]
    fn select_nodes_are_preserved_on_the_path() {
        let view = Expr::select(
            eq(0, 1),
            Expr::full_outer(eq(0, 1), Expr::table(t(0)), Expr::table(t(1))),
        );
        let d = derive_primary_delta(&view, t(1));
        let expected = Expr::select(
            eq(0, 1),
            Expr::left_outer(eq(0, 1), Expr::Delta(t(1)), Expr::table(t(0))),
        );
        assert_eq!(d, expected);
    }

    #[test]
    #[should_panic(expected = "does not reference")]
    fn unreferenced_table_panics() {
        derive_primary_delta(&v1(), t(9));
    }
}
