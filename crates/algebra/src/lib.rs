//! Logical algebra for SPOJ views — the analytical machinery of
//! Larson & Zhou, ICDE 2007.
//!
//! This crate is purely symbolic: it knows about tables only as positions
//! ([`TableId`]) in a view's table list and manipulates
//!
//! * [`TableSet`] — bitsets of tables (source sets, null-extension sets),
//! * [`Pred`] — structured conjunctions of null-rejecting atoms,
//! * [`Expr`] — SPOJ operator trees, extended with the delta-expression
//!   operators the maintenance algorithms introduce (Δ-leaves, null-if,
//!   duplicate/subsumption cleanup),
//! * the **join-disjunctive normal form** (§2.2) and its FK-based term
//!   pruning,
//! * the **subsumption graph** (§2.3) and **maintenance graph** (§3.1) with
//!   the Theorem 3 foreign-key reduction (§6.2),
//! * the **primary-delta derivation** (§4), **left-deep conversion** with
//!   associativity rules 1–5 (§4.1), and **SimplifyTree** (§6.1).
//!
//! Execution of the resulting expressions lives in `ojv-exec`; the end-to-end
//! maintenance procedure lives in `ojv-core`.

#![forbid(unsafe_code)]

pub mod expr;
pub mod fingerprint;
pub mod fk;
pub mod left_deep;
pub mod maintenance_graph;
pub mod normal_form;
pub mod pred;
pub mod primary_delta;
pub mod simplify_fk;
pub mod spine;
pub mod subsumption;
pub mod table_set;

pub use expr::{Expr, JoinKind};
pub use fingerprint::{fingerprint_expr, fingerprint_pred, Fingerprinter};
pub use fk::FkEdge;
pub use left_deep::to_left_deep;
pub use maintenance_graph::{Affect, MaintenanceGraph};
pub use normal_form::{normalize, normalize_unpruned, Term};
pub use pred::{Atom, CmpOp, ColRef, Pred};
pub use primary_delta::derive_primary_delta;
pub use simplify_fk::simplify_tree;
pub use spine::{Spine, SpineStep};
pub use subsumption::SubsumptionGraph;
pub use table_set::{TableId, TableSet};
