//! Foreign-key edges between a view's tables.

use crate::pred::{Atom, ColRef, Pred};
use crate::table_set::TableId;

/// A foreign-key constraint between two tables of a view, expressed in the
/// view's positional vocabulary.
///
/// `child.(child_cols)` references the non-null unique key
/// `parent.(parent_cols)` (paper §6). `child_cols_non_null` records whether
/// the child columns are declared NOT NULL — the term-pruning and
/// `SimplifyTree` optimizations additionally rely on every child row actually
/// having a parent, which a nullable FK column does not guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkEdge {
    pub child: TableId,
    pub child_cols: Vec<usize>,
    pub parent: TableId,
    pub parent_cols: Vec<usize>,
    pub child_cols_non_null: bool,
    /// §6's caveat list: cascading deletes disable the FK optimizations.
    pub cascade_delete: bool,
    /// §6's caveat list: deferrable constraints disable the FK optimizations
    /// inside multi-statement transactions.
    pub deferrable: bool,
}

impl FkEdge {
    /// The equijoin atoms `child.fk_i = parent.key_i` this FK corresponds to.
    pub fn join_atoms(&self) -> Vec<Atom> {
        self.child_cols
            .iter()
            .zip(&self.parent_cols)
            .map(|(&c, &p)| Atom::eq(ColRef::new(self.child, c), ColRef::new(self.parent, p)))
            .collect()
    }

    /// True iff predicate `pred` contains every join atom of this FK
    /// (in either column orientation), i.e. the two tables are joined *on*
    /// the foreign key.
    pub fn matched_by(&self, pred: &Pred) -> bool {
        self.join_atoms()
            .iter()
            .all(|want| pred.atoms().iter().any(|have| atom_eq_sym(have, want)))
    }

    /// True iff the §6 optimizations may use this edge at all.
    pub fn usable(&self) -> bool {
        self.child_cols_non_null && !self.cascade_delete && !self.deferrable
    }
}

/// Equality of equijoin atoms up to operand order.
fn atom_eq_sym(a: &Atom, b: &Atom) -> bool {
    use crate::pred::CmpOp;
    match (a, b) {
        (Atom::Cols(a1, CmpOp::Eq, a2), Atom::Cols(b1, CmpOp::Eq, b2)) => {
            (a1 == b1 && a2 == b2) || (a1 == b2 && a2 == b1)
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;

    fn edge() -> FkEdge {
        FkEdge {
            child: TableId(1),
            child_cols: vec![2],
            parent: TableId(0),
            parent_cols: vec![0],
            child_cols_non_null: true,
            cascade_delete: false,
            deferrable: false,
        }
    }

    #[test]
    fn join_atoms_align_columns() {
        let e = edge();
        let atoms = e.join_atoms();
        assert_eq!(atoms.len(), 1);
        assert_eq!(
            atoms[0],
            Atom::eq(ColRef::new(TableId(1), 2), ColRef::new(TableId(0), 0))
        );
    }

    #[test]
    fn matched_by_is_orientation_insensitive() {
        let e = edge();
        let fwd = Pred::atom(Atom::eq(
            ColRef::new(TableId(1), 2),
            ColRef::new(TableId(0), 0),
        ));
        let rev = Pred::atom(Atom::eq(
            ColRef::new(TableId(0), 0),
            ColRef::new(TableId(1), 2),
        ));
        assert!(e.matched_by(&fwd));
        assert!(e.matched_by(&rev));
        let other = Pred::atom(Atom::Cols(
            ColRef::new(TableId(1), 2),
            CmpOp::Lt,
            ColRef::new(TableId(0), 0),
        ));
        assert!(!e.matched_by(&other));
    }

    #[test]
    fn usable_respects_caveats() {
        let mut e = edge();
        assert!(e.usable());
        e.cascade_delete = true;
        assert!(!e.usable());
        let mut e2 = edge();
        e2.child_cols_non_null = false;
        assert!(!e2.usable());
        let mut e3 = edge();
        e3.deferrable = true;
        assert!(!e3.usable());
    }
}
