//! SPOJ operator trees and the delta-expression operators.

use std::fmt;

use crate::pred::Pred;
use crate::table_set::{TableId, TableSet};

/// Join operators. User views may contain the first four; the semijoins
/// appear only in generated maintenance expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
    /// `⋉` — left tuples with at least one match.
    LeftSemi,
    /// `▷` — left tuples with no match.
    LeftAnti,
}

impl JoinKind {
    /// The kind after commuting the two inputs.
    pub fn commuted(self) -> JoinKind {
        match self {
            JoinKind::LeftOuter => JoinKind::RightOuter,
            JoinKind::RightOuter => JoinKind::LeftOuter,
            k @ (JoinKind::Inner | JoinKind::FullOuter) => k,
            k @ (JoinKind::LeftSemi | JoinKind::LeftAnti) => {
                panic!("semijoin {k:?} is not commutable")
            }
        }
    }

    /// True for the four SPOJ join kinds allowed in view definitions.
    pub fn is_spoj(self) -> bool {
        matches!(
            self,
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::RightOuter | JoinKind::FullOuter
        )
    }
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "JOIN",
            JoinKind::LeftOuter => "LEFT OUTER JOIN",
            JoinKind::RightOuter => "RIGHT OUTER JOIN",
            JoinKind::FullOuter => "FULL OUTER JOIN",
            JoinKind::LeftSemi => "LEFT SEMI JOIN",
            JoinKind::LeftAnti => "LEFT ANTI JOIN",
        };
        f.write_str(s)
    }
}

/// An operator tree over the tables of one view.
///
/// User-defined views use `Table`, `Select`, and SPOJ `Join` nodes. The
/// maintenance algorithms (§4–§6) extend the vocabulary with:
///
/// * [`Expr::Delta`] — the update batch `ΔT`,
/// * [`Expr::OldState`] — `T± ▷_{eq(T)} ΔT` after an insert, i.e. the
///   pre-update contents of `T` (§5.3),
/// * [`Expr::NullIf`] — the paper's `λ^c_p` operator from §4.1: for every
///   tuple *not* satisfying `pred`, all columns of `null_tables` are set to
///   null (the paper states it as nulling tuples that satisfy `¬p`; we store
///   `p` and negate at evaluation),
/// * [`Expr::CleanDup`] — the `δ` cleanup paired with null-if in rules 1, 4
///   and 5: removes duplicates *and* tuples subsumed by another tuple in the
///   result (which null-if can create alongside plain duplicates),
/// * [`Expr::Empty`] — the empty relation, produced by `SimplifyTree` when a
///   foreign key proves the whole delta is empty (§6.1 step 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Scan of base table `T`.
    Table(TableId),
    /// Scan of the update batch `ΔT`.
    Delta(TableId),
    /// The pre-update state of `T` when only the post-update table and `ΔT`
    /// are available: `T − ΔT` after an insert.
    OldState(TableId),
    /// The empty relation (over the view-wide schema).
    Empty,
    Select(Pred, Box<Expr>),
    Join {
        kind: JoinKind,
        pred: Pred,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    NullIf {
        /// Tables whose columns are nulled when `pred` fails.
        null_tables: TableSet,
        pred: Pred,
        input: Box<Expr>,
    },
    /// Duplicate elimination + removal of subsumed tuples (the `δ` cleanup
    /// required after a null-if).
    CleanDup(Box<Expr>),
}

impl Expr {
    pub fn table(t: TableId) -> Expr {
        Expr::Table(t)
    }

    pub fn select(pred: Pred, input: Expr) -> Expr {
        Expr::Select(pred, Box::new(input))
    }

    pub fn join(kind: JoinKind, pred: Pred, left: Expr, right: Expr) -> Expr {
        Expr::Join {
            kind,
            pred,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn inner(pred: Pred, left: Expr, right: Expr) -> Expr {
        Expr::join(JoinKind::Inner, pred, left, right)
    }

    pub fn left_outer(pred: Pred, left: Expr, right: Expr) -> Expr {
        Expr::join(JoinKind::LeftOuter, pred, left, right)
    }

    pub fn right_outer(pred: Pred, left: Expr, right: Expr) -> Expr {
        Expr::join(JoinKind::RightOuter, pred, left, right)
    }

    pub fn full_outer(pred: Pred, left: Expr, right: Expr) -> Expr {
        Expr::join(JoinKind::FullOuter, pred, left, right)
    }

    /// The tables whose tuples (and columns) can appear non-null in this
    /// expression's output.
    pub fn sources(&self) -> TableSet {
        match self {
            Expr::Table(t) | Expr::Delta(t) | Expr::OldState(t) => TableSet::singleton(*t),
            Expr::Empty => TableSet::empty(),
            Expr::Select(_, e) | Expr::NullIf { input: e, .. } | Expr::CleanDup(e) => e.sources(),
            Expr::Join {
                kind, left, right, ..
            } => match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => left.sources(),
                _ => left.sources().union(right.sources()),
            },
        }
    }

    /// True iff the subtree contains a `Table`/`Delta`/`OldState` leaf for
    /// `t`.
    pub fn references(&self, t: TableId) -> bool {
        self.sources().contains(t)
    }

    /// True iff the tree is a valid user view definition: only `Table`,
    /// `Select`, and SPOJ joins.
    pub fn is_user_spoj(&self) -> bool {
        match self {
            Expr::Table(_) => true,
            Expr::Select(_, e) => e.is_user_spoj(),
            Expr::Join {
                kind, left, right, ..
            } => kind.is_spoj() && left.is_user_spoj() && right.is_user_spoj(),
            _ => false,
        }
    }

    /// Pretty-print as an indented tree; used by tests asserting the exact
    /// shapes of the paper's Figures 2 and 3 and by the `repro` binary.
    pub fn tree_string(&self, names: &dyn Fn(TableId) -> String) -> String {
        let mut out = String::new();
        self.tree_fmt(&mut out, 0, names);
        out
    }

    fn tree_fmt(&self, out: &mut String, depth: usize, names: &dyn Fn(TableId) -> String) {
        let pad = "  ".repeat(depth);
        match self {
            Expr::Table(t) => out.push_str(&format!("{pad}{}\n", names(*t))),
            Expr::Delta(t) => out.push_str(&format!("{pad}Δ{}\n", names(*t))),
            Expr::OldState(t) => out.push_str(&format!("{pad}old({})\n", names(*t))),
            Expr::Empty => out.push_str(&format!("{pad}∅\n")),
            Expr::Select(p, e) => {
                out.push_str(&format!("{pad}σ[{p}]\n"));
                e.tree_fmt(out, depth + 1, names);
            }
            Expr::Join {
                kind,
                pred,
                left,
                right,
            } => {
                out.push_str(&format!("{pad}{kind} ON {pred}\n"));
                left.tree_fmt(out, depth + 1, names);
                right.tree_fmt(out, depth + 1, names);
            }
            Expr::NullIf {
                null_tables, pred, ..
            } => {
                out.push_str(&format!("{pad}λ[null {null_tables} unless {pred}]\n"));
                if let Expr::NullIf { input, .. } = self {
                    input.tree_fmt(out, depth + 1, names);
                }
            }
            Expr::CleanDup(e) => {
                out.push_str(&format!("{pad}δ↓\n"));
                e.tree_fmt(out, depth + 1, names);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Atom, ColRef};

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn p(a: u8, b: u8) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), 0), ColRef::new(t(b), 0)))
    }

    #[test]
    fn commuted_kinds() {
        assert_eq!(JoinKind::LeftOuter.commuted(), JoinKind::RightOuter);
        assert_eq!(JoinKind::RightOuter.commuted(), JoinKind::LeftOuter);
        assert_eq!(JoinKind::FullOuter.commuted(), JoinKind::FullOuter);
        assert_eq!(JoinKind::Inner.commuted(), JoinKind::Inner);
    }

    #[test]
    fn sources_of_join_tree() {
        let e = Expr::full_outer(
            p(0, 1),
            Expr::table(t(0)),
            Expr::left_outer(p(1, 2), Expr::table(t(1)), Expr::table(t(2))),
        );
        assert_eq!(e.sources(), TableSet::first_n(3));
        assert!(e.references(t(2)));
        assert!(!e.references(t(3)));
    }

    #[test]
    fn semijoin_sources_are_left_only() {
        let e = Expr::join(
            JoinKind::LeftAnti,
            p(0, 1),
            Expr::table(t(0)),
            Expr::table(t(1)),
        );
        assert_eq!(e.sources(), TableSet::singleton(t(0)));
    }

    #[test]
    fn user_spoj_validation() {
        let ok = Expr::select(
            p(0, 1),
            Expr::inner(p(0, 1), Expr::table(t(0)), Expr::table(t(1))),
        );
        assert!(ok.is_user_spoj());
        let bad = Expr::Delta(t(0));
        assert!(!bad.is_user_spoj());
        let bad2 = Expr::CleanDup(Box::new(Expr::table(t(0))));
        assert!(!bad2.is_user_spoj());
    }

    #[test]
    fn tree_string_renders() {
        let e = Expr::left_outer(p(0, 1), Expr::table(t(0)), Expr::Delta(t(1)));
        let s = e.tree_string(&|id| format!("tbl{}", id.0));
        assert!(s.contains("LEFT OUTER JOIN"));
        assert!(s.contains("tbl0"));
        assert!(s.contains("Δtbl1"));
    }
}
