//! `SimplifyTree` — foreign-key simplification of `ΔV^D` (paper §6.1).
//!
//! Let `S` be the set of tables with a usable foreign key referencing the
//! updated table `T`. Because `ΔT` rows carry keys no child row references
//! (new keys on insert; restrict-checked keys on delete), `ΔT` can never
//! join any tuple of a table in `S` *through the FK join predicate*:
//!
//! * an **inner join** (or a selection) on the spine whose predicate needs
//!   such a match makes the whole delta empty;
//! * a **left outer join** on the spine whose predicate needs such a match
//!   passes the spine through unchanged — the join node is removed, and all
//!   tables of the discarded right subtree join the "always null on the
//!   spine" set.
//!
//! The implementation refines the paper's condition slightly: for a table
//! `s ∈ S` that still has live columns, a join is removed only when its
//! predicate contains the full FK equijoin (`fk.matched_by`), which is the
//! property the impossibility argument actually uses. Tables that became
//! all-null because their subtree was discarded kill any predicate that
//! references them (null-rejection), which is the paper's rule verbatim.

use crate::expr::{Expr, JoinKind};
use crate::fk::FkEdge;
use crate::pred::Pred;
use crate::table_set::{TableId, TableSet};

/// Apply `SimplifyTree` to a derived `ΔV^D` expression.
///
/// `updated` is the changed table; `fks` are all usable FK edges among the
/// view's tables (edges not referencing `updated` as parent are ignored).
/// Returns the simplified tree, possibly [`Expr::Empty`].
pub fn simplify_tree(expr: Expr, updated: TableId, fks: &[FkEdge]) -> Expr {
    let fk_children: Vec<&FkEdge> = fks
        .iter()
        .filter(|fk| fk.usable() && fk.parent == updated && fk.child != updated)
        .collect();
    let mut null_set = TableSet::empty();
    simplify(expr, &fk_children, &mut null_set)
}

fn simplify(expr: Expr, fk_children: &[&FkEdge], null_set: &mut TableSet) -> Expr {
    match expr {
        Expr::Select(p, input) => {
            let inner = simplify(*input, fk_children, null_set);
            if matches!(inner, Expr::Empty) || p.null_rejecting_on_any(*null_set) {
                Expr::Empty
            } else {
                Expr::Select(p, Box::new(inner))
            }
        }
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            // Simplification walks the spine: only the left input is on the
            // path from ΔT to the root.
            let spine = simplify(*left, fk_children, null_set);
            if matches!(spine, Expr::Empty) {
                return Expr::Empty;
            }
            let right_tables = right.sources();
            if cannot_match(&pred, right_tables, fk_children, *null_set) {
                match kind {
                    JoinKind::Inner => Expr::Empty,
                    JoinKind::LeftOuter => {
                        // Remove the node; the discarded right subtree's
                        // tables are now always null on the spine.
                        *null_set = null_set.union(right_tables);
                        spine
                    }
                    other => unreachable!("spine join of kind {other:?} in ΔV^D"),
                }
            } else {
                Expr::join(kind, pred, spine, *right)
            }
        }
        // Wrappers introduced by the left-deep conversion pass through
        // (simplification normally runs before that conversion).
        Expr::NullIf {
            null_tables,
            pred,
            input,
        } => {
            let inner = simplify(*input, fk_children, null_set);
            if matches!(inner, Expr::Empty) {
                Expr::Empty
            } else {
                Expr::NullIf {
                    null_tables,
                    pred,
                    input: Box::new(inner),
                }
            }
        }
        Expr::CleanDup(input) => {
            let inner = simplify(*input, fk_children, null_set);
            if matches!(inner, Expr::Empty) {
                Expr::Empty
            } else {
                Expr::CleanDup(Box::new(inner))
            }
        }
        leaf => leaf,
    }
}

/// True iff no spine tuple can satisfy `pred` against the right operand.
fn cannot_match(
    pred: &Pred,
    right_tables: TableSet,
    fk_children: &[&FkEdge],
    null_set: TableSet,
) -> bool {
    // (a) The predicate references a table that is always null on the spine.
    if pred.null_rejecting_on_any(null_set) {
        return true;
    }
    // (b) The predicate joins an FK child of ΔT's table on the full FK.
    fk_children
        .iter()
        .any(|fk| right_tables.contains(fk.child) && fk.matched_by(pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Atom, CmpOp, ColRef};

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn eq(a: u8, ac: usize, b: u8, bc: usize) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), ac), ColRef::new(t(b), bc)))
    }

    fn fk(child: u8, ccol: usize, parent: u8, pcol: usize) -> FkEdge {
        FkEdge {
            child: t(child),
            child_cols: vec![ccol],
            parent: t(parent),
            parent_cols: vec![pcol],
            child_cols_non_null: true,
            cascade_delete: false,
            deferrable: false,
        }
    }

    /// Example 10: `ΔV1^D = ((ΔT lo_{pk=fk} U) ⋈ R) lo S` with FK
    /// `U.fk → T.pk` reduces to `(ΔT ⋈ R) lo S`.
    #[test]
    fn example_10_removes_fk_child_join() {
        // R=0, S=1, T=2, U=3; p(t,u) is the FK join T.0 = U.1.
        let delta = Expr::left_outer(
            eq(0, 1, 1, 1),
            Expr::inner(
                eq(0, 0, 2, 1),
                Expr::left_outer(eq(2, 0, 3, 1), Expr::Delta(t(2)), Expr::table(t(3))),
                Expr::table(t(0)),
            ),
            Expr::table(t(1)),
        );
        let simplified = simplify_tree(delta, t(2), &[fk(3, 1, 2, 0)]);
        let expected = Expr::left_outer(
            eq(0, 1, 1, 1),
            Expr::inner(eq(0, 0, 2, 1), Expr::Delta(t(2)), Expr::table(t(0))),
            Expr::table(t(1)),
        );
        assert_eq!(simplified, expected);
    }

    /// Example 1: inserting into `part` (id 0) of
    /// `ΔV^D = ΔP lo (O lo L)` with FK `L.partkey → P` reduces to `ΔP`.
    #[test]
    fn example_1_part_insert_reduces_to_delta_scan() {
        let delta = Expr::left_outer(
            eq(0, 0, 2, 1), // p_partkey = l_partkey (the FK join)
            Expr::Delta(t(0)),
            Expr::left_outer(eq(1, 0, 2, 0), Expr::table(t(1)), Expr::table(t(2))),
        );
        let simplified = simplify_tree(delta, t(0), &[fk(2, 1, 0, 0)]);
        assert_eq!(simplified, Expr::Delta(t(0)));
    }

    /// V3 with an orders update: the spine's first join is an inner join to
    /// lineitem on the FK — the whole delta is empty.
    #[test]
    fn inner_join_on_fk_child_empties_delta() {
        // O=0, L=1, C=2: ΔV^D = (ΔO ⋈_{ok=lok} L) ⋈_{ck=ock} C.
        let delta = Expr::inner(
            eq(2, 0, 0, 1),
            Expr::inner(eq(0, 0, 1, 0), Expr::Delta(t(0)), Expr::table(t(1))),
            Expr::table(t(2)),
        );
        let simplified = simplify_tree(delta, t(0), &[fk(1, 0, 0, 0)]);
        assert_eq!(simplified, Expr::Empty);
    }

    /// Cascading elimination: once a join is removed, predicates referencing
    /// the discarded tables are unsatisfiable and later lo joins fall too
    /// (the customer-update case of V3).
    #[test]
    fn cascading_elimination_through_null_set() {
        // C=0, O=1, L=2, P=3.
        // ΔV^D = (ΔC lo_{ck=ock} (L ⋈ O)) lo_{lp=pp} P, FK O.custkey → C.
        let delta = Expr::left_outer(
            eq(2, 1, 3, 0), // l_partkey = p_partkey (references L)
            Expr::left_outer(
                eq(0, 0, 1, 1), // ck = ock (the FK join)
                Expr::Delta(t(0)),
                Expr::inner(eq(1, 0, 2, 0), Expr::table(t(1)), Expr::table(t(2))),
            ),
            Expr::table(t(3)),
        );
        let simplified = simplify_tree(delta, t(0), &[fk(1, 1, 0, 0)]);
        assert_eq!(simplified, Expr::Delta(t(0)));
    }

    #[test]
    fn select_on_discarded_table_empties_delta() {
        // (ΔC lo_{fk} O) then σ on O: the σ can never pass.
        let delta = Expr::select(
            Pred::atom(Atom::Const(
                ColRef::new(t(1), 2),
                CmpOp::Gt,
                ojv_rel::Datum::Int(0),
            )),
            Expr::left_outer(eq(0, 0, 1, 1), Expr::Delta(t(0)), Expr::table(t(1))),
        );
        let simplified = simplify_tree(delta, t(0), &[fk(1, 1, 0, 0)]);
        assert_eq!(simplified, Expr::Empty);
    }

    #[test]
    fn non_fk_join_is_untouched() {
        // Join on a non-FK column pair must not be eliminated.
        let delta = Expr::left_outer(
            eq(0, 2, 1, 2), // not the FK columns
            Expr::Delta(t(0)),
            Expr::table(t(1)),
        );
        let simplified = simplify_tree(delta.clone(), t(0), &[fk(1, 1, 0, 0)]);
        assert_eq!(simplified, delta);
    }

    #[test]
    fn unusable_fk_is_ignored() {
        let mut bad = fk(1, 1, 0, 0);
        bad.cascade_delete = true;
        let delta = Expr::left_outer(eq(0, 0, 1, 1), Expr::Delta(t(0)), Expr::table(t(1)));
        let simplified = simplify_tree(delta.clone(), t(0), &[bad]);
        assert_eq!(simplified, delta);
    }
}
