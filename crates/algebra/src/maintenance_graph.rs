//! The maintenance graph (paper §3.1) and its foreign-key reduction (§6.2).

use std::fmt;

use crate::fk::FkEdge;
use crate::subsumption::SubsumptionGraph;
use crate::table_set::TableId;

/// How an update to table `T` affects a term (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affect {
    /// `T` is among the term's source tables.
    Direct,
    /// `T` is not a source table, but is a source of at least one parent.
    Indirect,
}

/// An indirectly affected term together with its affected parents, split
/// into directly affected (`pard`) and indirectly affected (`pari`) — the
/// sets the §5 secondary-delta expressions are built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectTerm {
    pub term: usize,
    pub pard: Vec<usize>,
    pub pari: Vec<usize>,
}

/// The maintenance graph for one view and one updated table: the affected
/// subgraph of the subsumption graph, with nodes classified direct/indirect.
///
/// When usable foreign keys are supplied, Theorem 3 removes directly
/// affected terms that provably cannot change, and indirect terms left
/// without a directly affected parent are removed with them (§6.2's
/// *reduced maintenance graph*).
#[derive(Debug, Clone)]
pub struct MaintenanceGraph {
    pub updated: TableId,
    /// Directly affected term ids (indexes into the subsumption graph).
    pub direct: Vec<usize>,
    /// Indirectly affected terms with their parent classification.
    pub indirect: Vec<IndirectTerm>,
}

impl MaintenanceGraph {
    /// Build the (possibly reduced) maintenance graph. Pass an empty `fks`
    /// slice to skip the Theorem 3 reduction.
    pub fn build(graph: &SubsumptionGraph, updated: TableId, fks: &[FkEdge]) -> Self {
        let n = graph.len();
        // Step 1: directly affected terms.
        let mut direct: Vec<bool> = (0..n)
            .map(|i| graph.term(i).tables.contains(updated))
            .collect();

        // Theorem 3: a directly affected term is unaffected if its source set
        // contains a table R ≠ T with a usable FK referencing T's key, joined
        // on that FK within the term's predicate. (Inserted T rows have no
        // referencing R rows; deleted T rows passed the restrict check.)
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if !direct[i] {
                continue;
            }
            let term = graph.term(i);
            let reducible = fks.iter().any(|fk| {
                fk.usable()
                    && fk.parent == updated
                    && fk.child != updated
                    && term.tables.contains(fk.child)
                    && fk.matched_by(&term.pred)
            });
            if reducible {
                direct[i] = false;
            }
        }

        // Step 2: indirectly affected terms — at least one (surviving)
        // directly affected parent.
        let mut indirect = Vec::new();
        for i in 0..n {
            if direct[i] || graph.term(i).tables.contains(updated) {
                // Terms containing T that were reduced away are unaffected,
                // not indirect.
                continue;
            }
            let pard: Vec<usize> = graph
                .parents(i)
                .iter()
                .copied()
                .filter(|&p| direct[p])
                .collect();
            if pard.is_empty() {
                continue;
            }
            let pari: Vec<usize> = graph
                .parents(i)
                .iter()
                .copied()
                .filter(|&p| {
                    // An indirectly affected parent: not direct, but itself
                    // has a directly affected parent.
                    !direct[p]
                        && !graph.term(p).tables.contains(updated)
                        && graph.parents(p).iter().any(|&pp| direct[pp])
                })
                .collect();
            indirect.push(IndirectTerm {
                term: i,
                pard,
                pari,
            });
        }

        // Order indirect terms by descending source-set size. The §5
        // deletion-case anti-join of a term must see the new orphans that
        // superset terms insert (a freshly orphaned {R,S} tuple keeps
        // covering its {R} sub-tuple), so supersets are processed first.
        indirect.sort_by_key(|ind| std::cmp::Reverse(graph.term(ind.term).tables.len()));

        MaintenanceGraph {
            updated,
            direct: (0..n).filter(|&i| direct[i]).collect(),
            indirect,
        }
    }

    /// True iff the update cannot affect the view at all.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty() && self.indirect.is_empty()
    }
}

impl fmt::Display for MaintenanceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "update {}: direct={:?}", self.updated, self.direct)?;
        write!(
            f,
            " indirect={:?}",
            self.indirect.iter().map(|i| i.term).collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal_form::Term;
    use crate::pred::{Atom, ColRef, Pred};
    use crate::table_set::TableSet;

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn term(ids: &[u8], pred: Pred) -> Term {
        Term {
            tables: TableSet::from_iter(ids.iter().map(|&i| t(i))),
            pred,
        }
    }

    fn eq(a: u8, ac: usize, b: u8, bc: usize) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), ac), ColRef::new(t(b), bc)))
    }

    /// Figure 1(b): maintenance graph of V1 when T (=id 2) is updated.
    /// Terms (R=0,S=1,T=2,U=3): TURS, TUR, TRS, TR, RS, R, S.
    #[test]
    fn v1_maintenance_graph_matches_figure_1b() {
        let terms = vec![
            term(&[0, 1, 2, 3], Pred::true_()), // 0 TURS D
            term(&[0, 2, 3], Pred::true_()),    // 1 TUR  D
            term(&[0, 1, 2], Pred::true_()),    // 2 TRS  D
            term(&[0, 2], Pred::true_()),       // 3 TR   D
            term(&[0, 1], Pred::true_()),       // 4 RS   I
            term(&[0], Pred::true_()),          // 5 R    I
            term(&[1], Pred::true_()),          // 6 S    unaffected
        ];
        let g = SubsumptionGraph::new(terms);
        let m = MaintenanceGraph::build(&g, t(2), &[]);
        assert_eq!(m.direct, vec![0, 1, 2, 3]);
        let ind: Vec<usize> = m.indirect.iter().map(|i| i.term).collect();
        assert_eq!(ind, vec![4, 5]);
        // RS's affected parent is TRS (direct); no indirect parents.
        let rs = &m.indirect[0];
        assert_eq!(rs.pard, vec![2]);
        assert!(rs.pari.is_empty());
        // R's parents are TR (direct) and RS (indirect).
        let r = &m.indirect[1];
        assert_eq!(r.pard, vec![3]);
        assert_eq!(r.pari, vec![4]);
        // S is unaffected: its only parent RS is indirect.
        assert!(!ind.contains(&6));
    }

    /// Example 11 / Figure 4: V2 terms {C,O,L},{C,O},{O,L},{C},{O},{L}
    /// (C=0, O=1, L=2), updated table O, FK L.lok → O.ok.
    fn v2_graph() -> SubsumptionGraph {
        let ck_ock = eq(0, 0, 1, 2);
        let ok_lok = eq(1, 0, 2, 0);
        SubsumptionGraph::new(vec![
            term(&[0, 1, 2], ck_ock.and(&ok_lok)), // 0 COL
            term(&[0, 1], ck_ock),                 // 1 CO
            term(&[1, 2], ok_lok),                 // 2 OL
            term(&[0], Pred::true_()),             // 3 C
            term(&[1], Pred::true_()),             // 4 O
            term(&[2], Pred::true_()),             // 5 L
        ])
    }

    #[test]
    fn v2_maintenance_graph_matches_figure_4a() {
        let m = MaintenanceGraph::build(&v2_graph(), t(1), &[]);
        assert_eq!(m.direct, vec![0, 1, 2, 4]);
        let ind: Vec<usize> = m.indirect.iter().map(|i| i.term).collect();
        assert_eq!(ind, vec![3, 5]);
    }

    #[test]
    fn v2_reduced_graph_matches_figure_4b() {
        let fk = FkEdge {
            child: t(2),
            child_cols: vec![0],
            parent: t(1),
            parent_cols: vec![0],
            child_cols_non_null: true,
            cascade_delete: false,
            deferrable: false,
        };
        let m = MaintenanceGraph::build(&v2_graph(), t(1), &[fk]);
        // COL and OL are eliminated (they join L to O on the FK); L loses its
        // only affected parent and disappears; C stays via CO.
        assert_eq!(m.direct, vec![1, 4]);
        let ind: Vec<usize> = m.indirect.iter().map(|i| i.term).collect();
        assert_eq!(ind, vec![3]);
        assert_eq!(m.indirect[0].pard, vec![1]);
    }

    #[test]
    fn unusable_fk_does_not_reduce() {
        let fk = FkEdge {
            child: t(2),
            child_cols: vec![0],
            parent: t(1),
            parent_cols: vec![0],
            child_cols_non_null: true,
            cascade_delete: true, // §6 caveat 2
            deferrable: false,
        };
        let m = MaintenanceGraph::build(&v2_graph(), t(1), &[fk]);
        assert_eq!(m.direct, vec![0, 1, 2, 4]);
    }

    #[test]
    fn fk_not_matching_join_pred_does_not_reduce() {
        // FK on a column pair that is not the join predicate.
        let fk = FkEdge {
            child: t(2),
            child_cols: vec![5],
            parent: t(1),
            parent_cols: vec![0],
            child_cols_non_null: true,
            cascade_delete: false,
            deferrable: false,
        };
        let m = MaintenanceGraph::build(&v2_graph(), t(1), &[fk]);
        assert_eq!(m.direct, vec![0, 1, 2, 4]);
    }

    #[test]
    fn update_of_unreferenced_table_yields_empty_graph() {
        let m = MaintenanceGraph::build(&v2_graph(), t(7), &[]);
        assert!(m.is_empty());
    }
}
