//! Table identifiers and table-set bitsets.

use std::fmt;

/// A table's position in a view's ordered table list.
///
/// The paper restricts views to reference each table at most once (§2), so a
/// position identifies a table unambiguously. Views are limited to 32 tables,
/// which keeps [`TableSet`] a `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u8);

impl TableId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A set of tables, used for term source sets (`T_i`), null-extension sets
/// (`S_i`), and predicate reference sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TableSet(u32);

impl TableSet {
    pub const EMPTY: TableSet = TableSet(0);

    /// Maximum number of tables in a view.
    pub const MAX_TABLES: usize = 32;

    pub fn empty() -> Self {
        TableSet(0)
    }

    pub fn singleton(t: TableId) -> Self {
        debug_assert!((t.0 as usize) < Self::MAX_TABLES);
        TableSet(1 << t.0)
    }

    /// The set {T0, …, T_{n-1}}.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::MAX_TABLES);
        if n == 32 {
            TableSet(u32::MAX)
        } else {
            TableSet((1u32 << n) - 1)
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = TableId>) -> Self {
        let mut s = TableSet::empty();
        for t in iter {
            s = s.insert(t);
        }
        s
    }

    #[must_use]
    pub fn insert(self, t: TableId) -> Self {
        TableSet(self.0 | (1 << t.0))
    }

    #[must_use]
    pub fn remove(self, t: TableId) -> Self {
        TableSet(self.0 & !(1 << t.0))
    }

    pub fn contains(self, t: TableId) -> bool {
        self.0 & (1 << t.0) != 0
    }

    #[must_use]
    pub fn union(self, other: TableSet) -> Self {
        TableSet(self.0 | other.0)
    }

    #[must_use]
    pub fn intersect(self, other: TableSet) -> Self {
        TableSet(self.0 & other.0)
    }

    #[must_use]
    pub fn difference(self, other: TableSet) -> Self {
        TableSet(self.0 & !other.0)
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn is_subset_of(self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Strict subset.
    pub fn is_proper_subset_of(self, other: TableSet) -> bool {
        self.is_subset_of(other) && self != other
    }

    pub fn is_superset_of(self, other: TableSet) -> bool {
        other.is_subset_of(self)
    }

    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn iter(self) -> impl Iterator<Item = TableId> {
        (0..32u8)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(TableId)
    }

    /// The single element of a singleton set.
    pub fn only(self) -> Option<TableId> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }
}

impl FromIterator<TableId> for TableSet {
    fn from_iter<I: IntoIterator<Item = TableId>>(iter: I) -> Self {
        TableSet::from_iter(iter)
    }
}

impl fmt::Display for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let a = TableSet::from_iter([TableId(0), TableId(2)]);
        let b = TableSet::singleton(TableId(2));
        assert!(a.contains(TableId(0)));
        assert!(!a.contains(TableId(1)));
        assert!(b.is_subset_of(a));
        assert!(b.is_proper_subset_of(a));
        assert!(!a.is_proper_subset_of(a));
        assert_eq!(a.union(b), a);
        assert_eq!(a.intersect(b), b);
        assert_eq!(a.difference(b), TableSet::singleton(TableId(0)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn first_n() {
        assert_eq!(TableSet::first_n(3).len(), 3);
        assert!(TableSet::first_n(3).contains(TableId(2)));
        assert!(!TableSet::first_n(3).contains(TableId(3)));
        assert_eq!(TableSet::first_n(0), TableSet::EMPTY);
        assert_eq!(TableSet::first_n(32).len(), 32);
    }

    #[test]
    fn iter_and_only() {
        let a = TableSet::from_iter([TableId(1), TableId(4)]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![TableId(1), TableId(4)]);
        assert_eq!(a.only(), None);
        assert_eq!(TableSet::singleton(TableId(7)).only(), Some(TableId(7)));
        assert_eq!(TableSet::EMPTY.only(), None);
    }

    #[test]
    fn display() {
        let a = TableSet::from_iter([TableId(0), TableId(3)]);
        assert_eq!(a.to_string(), "{T0,T3}");
    }
}
