//! Conversion of `ΔV^D` expressions to left-deep join trees (paper §4.1).
//!
//! The derived delta expression may contain subexpressions joining base
//! tables only (e.g. `R fo S` in Example 4), which can produce large
//! intermediate results even when `ΔT` is tiny. The paper introduces five
//! associativity rules — rules 1, 4 and 5 being new — that pull the top
//! operator of such a right operand into the main path, so that the right
//! operand of every join along the spine is a single base table.
//!
//! Rules 1, 4 and 5 require the *null-if* operator `λ^c_p` followed by a
//! cleanup `δ`. Note on the cleanup: nulling out the columns of a
//! mis-matched right side can create, for the same left tuple, both a
//! null-extended row and surviving joined rows; the null-extended row is
//! then *subsumed*, not merely duplicated. The cleanup operator therefore
//! removes duplicates **and** subsumed tuples ([`Expr::CleanDup`]); with
//! unique keys on the left input this reproduces the exact semantics of the
//! original bushy expression (the paper's `δ` with proofs in its companion
//! technical report).

use crate::expr::{Expr, JoinKind};
use crate::pred::Pred;
use crate::table_set::TableSet;

/// Convert a delta expression to a left-deep tree.
///
/// Joins whose predicates span both children of a bushy right operand (i.e.
/// non-binary predicates) are left bushy — the paper's rules assume binary
/// predicates — but their subtrees are still converted recursively.
pub fn to_left_deep(expr: Expr) -> Expr {
    match expr {
        Expr::Select(p, input) => Expr::Select(p, Box::new(to_left_deep(*input))),
        Expr::NullIf {
            null_tables,
            pred,
            input,
        } => Expr::NullIf {
            null_tables,
            pred,
            input: Box::new(to_left_deep(*input)),
        },
        Expr::CleanDup(input) => Expr::CleanDup(Box::new(to_left_deep(*input))),
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            let left = to_left_deep(*left);
            rewrite_join(kind, pred, left, *right)
        }
        leaf => leaf,
    }
}

fn rewrite_join(kind: JoinKind, pred: Pred, left: Expr, right: Expr) -> Expr {
    if is_leaf(&right) {
        return Expr::join(kind, pred, left, right);
    }
    match right {
        // Right operand is a selection over a non-leaf expression.
        Expr::Select(q, inner) => match kind {
            // σ commutes with inner join: pull it above and keep going.
            JoinKind::Inner => to_left_deep(Expr::Select(
                q,
                Box::new(Expr::join(JoinKind::Inner, pred, left, *inner)),
            )),
            // Rule 1: e1 lo_p (σ_q e2) = δ λ^{e2.*}_{¬q} (e1 lo_p e2).
            JoinKind::LeftOuter => {
                let null_tables = inner.sources();
                Expr::CleanDup(Box::new(Expr::NullIf {
                    null_tables,
                    pred: q,
                    input: Box::new(to_left_deep(Expr::join(
                        JoinKind::LeftOuter,
                        pred,
                        left,
                        *inner,
                    ))),
                }))
            }
            other => unreachable!("spine join of kind {other:?} in ΔV^D"),
        },
        // Right operand is itself a join: associate its top into the spine.
        Expr::Join {
            kind: rkind,
            pred: q,
            left: a,
            right: b,
        } => {
            let (a, b) = (*a, *b);
            // Orient so that the spine predicate's right-side tables live in
            // `a` (commute the right operand if they live in `b`).
            let pr: TableSet = pred.tables().intersect(a.sources().union(b.sources()));
            let (a, b, rkind) = if pr.is_subset_of(a.sources()) {
                (a, b, rkind)
            } else if pr.is_subset_of(b.sources()) {
                (b, a, rkind.commuted())
            } else {
                // Non-binary spine predicate: leave this join bushy but
                // normalize both subtrees.
                return Expr::join(kind, pred, left, to_left_deep(Expr::join(rkind, q, a, b)));
            };
            let a_sources = a.sources();
            let b_sources = b.sources();
            let rewritten = match (kind, rkind) {
                // Inner spine join: standard associativity; the right
                // operand's outer join degrades according to which side it
                // protected.
                (JoinKind::Inner, JoinKind::Inner | JoinKind::RightOuter) => Expr::join(
                    JoinKind::Inner,
                    q,
                    Expr::join(JoinKind::Inner, pred, left, a),
                    b,
                ),
                (JoinKind::Inner, JoinKind::LeftOuter | JoinKind::FullOuter) => Expr::join(
                    JoinKind::LeftOuter,
                    q,
                    Expr::join(JoinKind::Inner, pred, left, a),
                    b,
                ),
                // Rules 2 and 3: lo spine join over fo/lo right operand.
                (JoinKind::LeftOuter, JoinKind::FullOuter | JoinKind::LeftOuter) => Expr::join(
                    JoinKind::LeftOuter,
                    q.clone(),
                    Expr::join(JoinKind::LeftOuter, pred, left, a),
                    b,
                ),
                // Rules 4 and 5: lo spine join over ro/inner right operand —
                // need the null-if + cleanup fix-up.
                (JoinKind::LeftOuter, JoinKind::RightOuter | JoinKind::Inner) => {
                    Expr::CleanDup(Box::new(Expr::NullIf {
                        null_tables: a_sources.union(b_sources),
                        pred: q.clone(),
                        input: Box::new(Expr::join(
                            JoinKind::LeftOuter,
                            q,
                            Expr::join(JoinKind::LeftOuter, pred, left, a),
                            b,
                        )),
                    }))
                }
                (k, rk) => unreachable!("spine join {k:?} over right operand {rk:?} in ΔV^D"),
            };
            to_left_deep(rewritten)
        }
        other => Expr::join(kind, pred, left, other),
    }
}

/// A leaf for the purposes of the conversion: a base-table (or delta) scan,
/// possibly under a single-table selection.
fn is_leaf(e: &Expr) -> bool {
    match e {
        Expr::Table(_) | Expr::Delta(_) | Expr::OldState(_) | Expr::Empty => true,
        Expr::Select(_, inner) => is_leaf(inner),
        _ => false,
    }
}

/// True iff the expression is a left-deep tree: every join's right operand
/// is a leaf (used by tests and assertions).
pub fn is_left_deep(e: &Expr) -> bool {
    match e {
        Expr::Join { left, right, .. } => is_leaf(right) && is_left_deep(left),
        Expr::Select(_, i) | Expr::NullIf { input: i, .. } | Expr::CleanDup(i) => is_left_deep(i),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Atom, ColRef};
    use crate::table_set::TableId;

    fn t(i: u8) -> TableId {
        TableId(i)
    }

    fn eq(a: u8, b: u8) -> Pred {
        Pred::atom(Atom::eq(ColRef::new(t(a), 0), ColRef::new(t(b), 0)))
    }

    /// Example 4 / Figure 3: `(ΔT lo U) ⋈ (R fo S)` becomes
    /// `((ΔT lo U) ⋈ R) lo S`.
    #[test]
    fn example_4_bushy_to_left_deep() {
        // R=0, S=1, T=2, U=3.
        let bushy = Expr::inner(
            eq(0, 2),
            Expr::left_outer(eq(2, 3), Expr::Delta(t(2)), Expr::table(t(3))),
            Expr::full_outer(eq(0, 1), Expr::table(t(0)), Expr::table(t(1))),
        );
        let ld = to_left_deep(bushy);
        let expected = Expr::left_outer(
            eq(0, 1),
            Expr::inner(
                eq(0, 2),
                Expr::left_outer(eq(2, 3), Expr::Delta(t(2)), Expr::table(t(3))),
                Expr::table(t(0)),
            ),
            Expr::table(t(1)),
        );
        assert_eq!(ld, expected);
        assert!(is_left_deep(&ld));
    }

    /// Rule 4: lo spine over a right operand whose protected side is away
    /// from the spine predicate — requires the λ/δ fix-up.
    #[test]
    fn rule_4_introduces_null_if_and_cleanup() {
        // ΔP lo_{p(0,2)} (O lo_{q(1,2)} L): P=0, O=1, L=2. The spine pred
        // references L, which is the right child of the right operand, so the
        // right operand commutes to (L ro O) and rule 4 fires.
        let bushy = Expr::left_outer(
            eq(0, 2),
            Expr::Delta(t(0)),
            Expr::left_outer(eq(1, 2), Expr::table(t(1)), Expr::table(t(2))),
        );
        let ld = to_left_deep(bushy);
        let expected = Expr::CleanDup(Box::new(Expr::NullIf {
            null_tables: TableSet::from_iter([t(1), t(2)]),
            pred: eq(1, 2),
            input: Box::new(Expr::left_outer(
                eq(1, 2),
                Expr::left_outer(eq(0, 2), Expr::Delta(t(0)), Expr::table(t(2))),
                Expr::table(t(1)),
            )),
        }));
        assert_eq!(ld, expected);
        assert!(is_left_deep(&ld));
    }

    /// Rule 1: lo spine over a selection on a non-leaf operand.
    #[test]
    fn rule_1_pulls_selection_with_null_if() {
        // ΔA lo_{p(0,1)} σ_{q(1,2)}(B ⋈ C): A=0, B=1, C=2.
        let sel = Pred::atom(Atom::eq(ColRef::new(t(1), 1), ColRef::new(t(2), 1)));
        let bushy = Expr::left_outer(
            eq(0, 1),
            Expr::Delta(t(0)),
            Expr::select(
                sel.clone(),
                Expr::inner(eq(1, 2), Expr::table(t(1)), Expr::table(t(2))),
            ),
        );
        let ld = to_left_deep(bushy);
        assert!(is_left_deep(&ld));
        // Outermost operator must be the rule-1 cleanup.
        match &ld {
            Expr::CleanDup(inner) => match inner.as_ref() {
                Expr::NullIf {
                    null_tables, pred, ..
                } => {
                    assert_eq!(*null_tables, TableSet::from_iter([t(1), t(2)]));
                    assert_eq!(*pred, sel);
                }
                other => panic!("expected NullIf, got {other:?}"),
            },
            other => panic!("expected CleanDup, got {other:?}"),
        }
    }

    /// Inner spine join with a selection on the right commutes the selection
    /// above (no null-if needed).
    #[test]
    fn inner_join_pulls_selection_above() {
        let sel = Pred::atom(Atom::eq(ColRef::new(t(1), 1), ColRef::new(t(2), 1)));
        let bushy = Expr::inner(
            eq(0, 1),
            Expr::Delta(t(0)),
            Expr::select(
                sel.clone(),
                Expr::inner(eq(1, 2), Expr::table(t(1)), Expr::table(t(2))),
            ),
        );
        let ld = to_left_deep(bushy);
        assert!(is_left_deep(&ld));
        assert!(matches!(ld, Expr::Select(ref p, _) if *p == sel));
    }

    #[test]
    fn single_table_selects_count_as_leaves() {
        let filt = Pred::atom(Atom::Const(
            ColRef::new(t(1), 1),
            crate::pred::CmpOp::Lt,
            ojv_rel::Datum::Int(10),
        ));
        let e = Expr::inner(
            eq(0, 1),
            Expr::Delta(t(0)),
            Expr::select(filt, Expr::table(t(1))),
        );
        let ld = to_left_deep(e.clone());
        assert_eq!(ld, e);
        assert!(is_left_deep(&ld));
    }

    #[test]
    fn deep_right_nest_fully_linearizes() {
        // ΔA ⋈ (B ⋈ (C ⋈ D)) with a chain of binary predicates.
        let bushy = Expr::inner(
            eq(0, 1),
            Expr::Delta(t(0)),
            Expr::inner(
                eq(1, 2),
                Expr::table(t(1)),
                Expr::inner(eq(2, 3), Expr::table(t(2)), Expr::table(t(3))),
            ),
        );
        let ld = to_left_deep(bushy);
        assert!(is_left_deep(&ld));
        let expected = Expr::inner(
            eq(2, 3),
            Expr::inner(
                eq(1, 2),
                Expr::inner(eq(0, 1), Expr::Delta(t(0)), Expr::table(t(1))),
                Expr::table(t(2)),
            ),
            Expr::table(t(3)),
        );
        assert_eq!(ld, expected);
    }
}
