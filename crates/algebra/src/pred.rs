//! Structured, null-rejecting predicates.
//!
//! The paper requires every selection and join predicate of a view to be
//! *null-rejecting* (strong): it evaluates to false as soon as any referenced
//! column is null (§2). Keeping predicates as structured conjunctions of
//! atoms lets the normalizer, `SimplifyTree`, and the §5.3 predicate
//! splitting reason about exactly which tables each conjunct references.

use std::fmt;

use ojv_rel::Datum;

use crate::table_set::{TableId, TableSet};

/// A reference to column `col` (positional within the base table's schema)
/// of the view table at position `table`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColRef {
    pub table: TableId,
    pub col: usize,
}

impl ColRef {
    pub fn new(table: TableId, col: usize) -> Self {
        ColRef { table, col }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.col)
    }
}

/// Comparison operators for scalar atoms. All comparisons follow SQL
/// three-valued logic and are therefore null-rejecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate against a three-valued comparison result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One null-rejecting conjunct.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `left ⋈ right` between columns of two (usually different) tables.
    /// `CmpOp::Eq` atoms are the equijoins hash joins key on.
    Cols(ColRef, CmpOp, ColRef),
    /// `col ⋈ literal`.
    Const(ColRef, CmpOp, Datum),
    /// `col BETWEEN lo AND hi` (inclusive).
    Between(ColRef, Datum, Datum),
}

impl Atom {
    /// Equijoin atom `a = b`.
    pub fn eq(a: ColRef, b: ColRef) -> Self {
        Atom::Cols(a, CmpOp::Eq, b)
    }

    /// The set of tables the atom references.
    pub fn tables(&self) -> TableSet {
        match self {
            Atom::Cols(a, _, b) => TableSet::singleton(a.table).insert(b.table),
            Atom::Const(c, _, _) | Atom::Between(c, _, _) => TableSet::singleton(c.table),
        }
    }

    /// All column references in the atom.
    pub fn col_refs(&self) -> Vec<ColRef> {
        match self {
            Atom::Cols(a, _, b) => vec![*a, *b],
            Atom::Const(c, _, _) | Atom::Between(c, _, _) => vec![*c],
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Cols(a, op, b) => write!(f, "{a} {op} {b}"),
            Atom::Const(c, op, d) => write!(f, "{c} {op} {d}"),
            Atom::Between(c, lo, hi) => write!(f, "{c} BETWEEN {lo} AND {hi}"),
        }
    }
}

/// A conjunction of atoms. The empty conjunction is `TRUE`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pred {
    atoms: Vec<Atom>,
}

impl Pred {
    /// The always-true predicate.
    pub fn true_() -> Self {
        Pred { atoms: Vec::new() }
    }

    pub fn new(atoms: Vec<Atom>) -> Self {
        Pred { atoms }
    }

    pub fn atom(a: Atom) -> Self {
        Pred { atoms: vec![a] }
    }

    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    pub fn is_true(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All tables referenced by any conjunct.
    pub fn tables(&self) -> TableSet {
        self.atoms
            .iter()
            .fold(TableSet::empty(), |s, a| s.union(a.tables()))
    }

    /// Conjoin with another predicate.
    #[must_use]
    pub fn and(&self, other: &Pred) -> Pred {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        Pred { atoms }
    }

    /// True iff the conjunction references table `t` — since every atom is
    /// null-rejecting, this means the whole predicate is null-rejecting on
    /// `t`.
    pub fn null_rejecting_on(&self, t: TableId) -> bool {
        self.atoms.iter().any(|a| a.tables().contains(t))
    }

    /// True iff the predicate is null-rejecting on any table in `ts`.
    pub fn null_rejecting_on_any(&self, ts: TableSet) -> bool {
        self.atoms
            .iter()
            .any(|a| !a.tables().intersect(ts).is_empty())
    }

    /// Split the conjunction into the atoms satisfying `f` and the rest.
    pub fn partition(&self, f: impl Fn(&Atom) -> bool) -> (Pred, Pred) {
        let (yes, no) = self.atoms.iter().cloned().partition(|a| f(a));
        (Pred { atoms: yes }, Pred { atoms: no })
    }

    /// Atoms whose referenced tables are entirely within `ts`.
    pub fn restrict_to(&self, ts: TableSet) -> Pred {
        self.partition(|a| a.tables().is_subset_of(ts)).0
    }

    /// The equijoin atoms (`Cols` with `Eq`) between `left` tables and
    /// `right` tables, returned as `(left_col, right_col)` pairs; plus the
    /// remaining atoms as a residual predicate.
    ///
    /// Used by hash joins to derive their key columns.
    pub fn equi_split(&self, left: TableSet, right: TableSet) -> (Vec<(ColRef, ColRef)>, Pred) {
        let mut keys = Vec::new();
        let mut residual = Vec::new();
        for a in &self.atoms {
            match a {
                Atom::Cols(x, CmpOp::Eq, y) => {
                    if left.contains(x.table) && right.contains(y.table) {
                        keys.push((*x, *y));
                    } else if left.contains(y.table) && right.contains(x.table) {
                        keys.push((*y, *x));
                    } else {
                        residual.push(a.clone());
                    }
                }
                _ => residual.push(a.clone()),
            }
        }
        (keys, Pred { atoms: residual })
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("TRUE");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr(t: u8, c: usize) -> ColRef {
        ColRef::new(TableId(t), c)
    }

    #[test]
    fn atom_tables() {
        let a = Atom::eq(cr(0, 1), cr(2, 0));
        assert_eq!(a.tables(), TableSet::from_iter([TableId(0), TableId(2)]));
        let b = Atom::Const(cr(1, 0), CmpOp::Lt, Datum::Int(5));
        assert_eq!(b.tables(), TableSet::singleton(TableId(1)));
    }

    #[test]
    fn pred_null_rejection() {
        let p = Pred::new(vec![
            Atom::eq(cr(0, 0), cr(1, 0)),
            Atom::Const(cr(2, 0), CmpOp::Ge, Datum::Int(0)),
        ]);
        assert!(p.null_rejecting_on(TableId(0)));
        assert!(p.null_rejecting_on(TableId(2)));
        assert!(!p.null_rejecting_on(TableId(3)));
        assert!(p.null_rejecting_on_any(TableSet::from_iter([TableId(3), TableId(2)])));
        assert!(!p.null_rejecting_on_any(TableSet::singleton(TableId(3))));
    }

    #[test]
    fn equi_split_orients_keys() {
        let left = TableSet::singleton(TableId(0));
        let right = TableSet::singleton(TableId(1));
        let p = Pred::new(vec![
            Atom::eq(cr(1, 3), cr(0, 2)), // reversed orientation
            Atom::Const(cr(1, 0), CmpOp::Lt, Datum::Int(9)),
        ]);
        let (keys, residual) = p.equi_split(left, right);
        assert_eq!(keys, vec![(cr(0, 2), cr(1, 3))]);
        assert_eq!(residual.atoms().len(), 1);
    }

    #[test]
    fn restrict_to_filters_atoms() {
        let p = Pred::new(vec![
            Atom::eq(cr(0, 0), cr(1, 0)),
            Atom::Const(cr(0, 1), CmpOp::Gt, Datum::Int(1)),
        ]);
        let r = p.restrict_to(TableSet::singleton(TableId(0)));
        assert_eq!(r.atoms().len(), 1);
        let r2 = p.restrict_to(TableSet::from_iter([TableId(0), TableId(1)]));
        assert_eq!(r2.atoms().len(), 2);
    }

    #[test]
    fn true_pred() {
        assert!(Pred::true_().is_true());
        assert_eq!(Pred::true_().to_string(), "TRUE");
        assert_eq!(Pred::true_().tables(), TableSet::EMPTY);
    }

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Lt.eval(Less));
    }
}
