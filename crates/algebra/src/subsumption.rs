//! The subsumption graph (paper §2.3, Definition 2.1).

use std::fmt;

use crate::normal_form::Term;
use crate::table_set::TableSet;

/// The DAG of subsumption relationships among the terms of a normal form.
///
/// There is an edge from node `i` to node `j` when `S_i` is a *minimal*
/// superset of `S_j` among the term source sets: tuples of term `j` can only
/// be subsumed by tuples of (transitive) superset terms, and checking the
/// immediate parents suffices (paper, Lemma 2 of \[6\]).
#[derive(Debug, Clone)]
pub struct SubsumptionGraph {
    terms: Vec<Term>,
    /// `parents[i]` — indexes of the minimal-superset terms of term `i`.
    parents: Vec<Vec<usize>>,
    /// `children[i]` — inverse of `parents`.
    children: Vec<Vec<usize>>,
}

impl SubsumptionGraph {
    pub fn new(terms: Vec<Term>) -> Self {
        let n = terms.len();
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j || !terms[j].tables.is_proper_subset_of(terms[i].tables) {
                    continue;
                }
                // i ⊃ j; minimal iff no k with j ⊂ k ⊂ i.
                let minimal = !(0..n).any(|k| {
                    k != i
                        && k != j
                        && terms[j].tables.is_proper_subset_of(terms[k].tables)
                        && terms[k].tables.is_proper_subset_of(terms[i].tables)
                });
                if minimal {
                    parents[j].push(i);
                    children[i].push(j);
                }
            }
        }
        SubsumptionGraph {
            terms,
            parents,
            children,
        }
    }

    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn term(&self, i: usize) -> &Term {
        &self.terms[i]
    }

    /// Minimal-superset parents of term `i`.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// Terms whose minimal superset is term `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Index of the term with exactly this source set.
    pub fn term_with_sources(&self, tables: TableSet) -> Option<usize> {
        self.terms.iter().position(|t| t.tables == tables)
    }
}

impl fmt::Display for SubsumptionGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            write!(f, "{}: {}", i, t.tables)?;
            if !self.parents[i].is_empty() {
                write!(f, " -> parents ")?;
                for (k, p) in self.parents[i].iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.terms[*p].tables)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Pred;
    use crate::table_set::TableId;

    fn term(ids: &[u8]) -> Term {
        Term {
            tables: TableSet::from_iter(ids.iter().map(|&i| TableId(i))),
            pred: Pred::true_(),
        }
    }

    /// Figure 1(a): the subsumption graph of V1 with terms
    /// {T,U,R,S}, {T,U,R}, {T,R,S}, {T,R}, {R,S}, {R}, {S}.
    /// Ids: R=0, S=1, T=2, U=3.
    #[test]
    fn v1_subsumption_graph_matches_figure_1a() {
        let terms = vec![
            term(&[0, 1, 2, 3]), // TURS (0)
            term(&[0, 2, 3]),    // TUR  (1)
            term(&[0, 1, 2]),    // TRS  (2)
            term(&[0, 2]),       // TR   (3)
            term(&[0, 1]),       // RS   (4)
            term(&[0]),          // R    (5)
            term(&[1]),          // S    (6)
        ];
        let g = SubsumptionGraph::new(terms);
        // TR's minimal supersets: TUR and TRS (not TURS).
        assert_eq!(sorted(g.parents(3)), vec![1, 2]);
        // RS's minimal superset: TRS.
        assert_eq!(sorted(g.parents(4)), vec![2]);
        // R's minimal supersets: TR and RS.
        assert_eq!(sorted(g.parents(5)), vec![3, 4]);
        // S's minimal supersets: TRS? no — RS is smaller: S ⊂ RS ⊂ TRS.
        assert_eq!(sorted(g.parents(6)), vec![4]);
        // Top term has no parents; TUR and TRS point to TURS.
        assert!(g.parents(0).is_empty());
        assert_eq!(sorted(g.parents(1)), vec![0]);
        assert_eq!(sorted(g.parents(2)), vec![0]);
        // Children are the inverse relation.
        assert_eq!(sorted(g.children(0)), vec![1, 2]);
        assert_eq!(sorted(g.children(4)), vec![5, 6]);
    }

    #[test]
    fn incomparable_terms_have_no_edges() {
        let g = SubsumptionGraph::new(vec![term(&[0]), term(&[1])]);
        assert!(g.parents(0).is_empty());
        assert!(g.parents(1).is_empty());
    }

    #[test]
    fn term_lookup_by_sources() {
        let g = SubsumptionGraph::new(vec![term(&[0]), term(&[0, 1])]);
        assert_eq!(
            g.term_with_sources(TableSet::from_iter([TableId(0), TableId(1)])),
            Some(1)
        );
        assert_eq!(g.term_with_sources(TableSet::singleton(TableId(1))), None);
    }

    fn sorted(v: &[usize]) -> Vec<usize> {
        let mut v = v.to_vec();
        v.sort_unstable();
        v
    }
}
