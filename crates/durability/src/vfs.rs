//! Minimal virtual filesystem the WAL and checkpoint layers write through.
//!
//! Two implementations:
//!
//! * [`DiskVfs`] — a directory on the real filesystem (`std::fs`), with
//!   cached append handles so the WAL hot path does not reopen the active
//!   segment per record,
//! * [`MemVfs`] — an in-memory model that tracks, per file, both the
//!   *written* bytes and the *durable* bytes (those guaranteed to survive a
//!   crash, i.e. covered by a completed `sync`). [`MemVfs::crash`] discards
//!   everything that was never synced, which is exactly the state a process
//!   kill leaves behind — the substrate for the crash-point matrix and
//!   fault-injection tests.
//!
//! The interface is deliberately flat (no directories, no seeks): the log
//! only ever appends, truncates a torn tail, renames a finished checkpoint
//! into place, and deletes obsolete files.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

use crate::error::{DurabilityError, Result};

/// Filesystem surface required by the durability layer.
///
/// Contract notes:
/// * `create` durably registers the file's directory entry (disk
///   implementations flush directory metadata), so a created file survives
///   a crash — as empty, until its contents are covered by `sync`,
/// * `append` only guarantees the bytes reach the OS; they are crash-durable
///   only once a subsequent `sync` on the same file returns,
/// * `rename` is atomic with respect to crashes: afterwards either the old
///   or the new name exists, never a half state — and the rename itself is
///   durable (directory metadata flushed on disk implementations),
/// * `truncate` + `sync` makes the shortened length durable.
pub trait Vfs {
    /// Names of all files, sorted ascending.
    fn list(&self) -> Result<Vec<String>>;
    /// Current (written, not necessarily durable) length of a file.
    fn len(&self, name: &str) -> Result<u64>;
    /// Read a whole file.
    fn read(&self, name: &str) -> Result<Vec<u8>>;
    /// Create an empty file, truncating any existing one.
    fn create(&mut self, name: &str) -> Result<()>;
    /// Append bytes to an existing file.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<()>;
    /// Make all written bytes of `name` durable.
    fn sync(&mut self, name: &str) -> Result<()>;
    /// Shorten a file to `len` bytes.
    fn truncate(&mut self, name: &str, len: u64) -> Result<()>;
    /// Remove a file.
    fn delete(&mut self, name: &str) -> Result<()>;
    /// Atomically and durably rename `from` to `to`, replacing `to`.
    fn rename(&mut self, from: &str, to: &str) -> Result<()>;
}

// ---------------------------------------------------------------------------
// DiskVfs
// ---------------------------------------------------------------------------

/// A directory on the real filesystem.
pub struct DiskVfs {
    root: PathBuf,
    /// Cached append handles; the WAL appends to one file thousands of
    /// times between rotations, and reopening per record would dominate.
    handles: HashMap<String, std::fs::File>,
}

impl DiskVfs {
    /// Open (creating if needed) `root` as a durability directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| DurabilityError::io("create_dir", &root.display().to_string(), e))?;
        Ok(DiskVfs {
            root,
            handles: HashMap::new(),
        })
    }

    /// The directory this VFS reads and writes.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn handle(&mut self, name: &str) -> Result<&mut std::fs::File> {
        if !self.handles.contains_key(name) {
            let file = std::fs::OpenOptions::new()
                .append(true)
                .open(self.path(name))
                .map_err(|e| DurabilityError::io("open", name, e))?;
            self.handles.insert(name.to_string(), file);
        }
        Ok(self.handles.get_mut(name).expect("just inserted"))
    }

    /// Flush directory metadata so renames/deletes are crash-durable.
    fn sync_dir(&self) -> Result<()> {
        let dir = std::fs::File::open(&self.root)
            .map_err(|e| DurabilityError::io("open_dir", &self.root.display().to_string(), e))?;
        dir.sync_all()
            .map_err(|e| DurabilityError::io("sync_dir", &self.root.display().to_string(), e))
    }
}

impl Vfs for DiskVfs {
    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| DurabilityError::io("read_dir", &self.root.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DurabilityError::io("read_dir", "<entry>", e))?;
            if entry.path().is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn len(&self, name: &str) -> Result<u64> {
        let meta = std::fs::metadata(self.path(name))
            .map_err(|e| DurabilityError::io("metadata", name, e))?;
        Ok(meta.len())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        std::fs::read(self.path(name)).map_err(|e| DurabilityError::io("read", name, e))
    }

    fn create(&mut self, name: &str) -> Result<()> {
        self.handles.remove(name);
        std::fs::File::create(self.path(name))
            .map_err(|e| DurabilityError::io("create", name, e))?;
        // Without this, the new entry lives only in the in-memory directory:
        // on ext4 a power cut after rotation can drop the whole segment even
        // though every record in it was fsynced.
        self.sync_dir()
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        let file = self.handle(name)?;
        file.write_all(data)
            .map_err(|e| DurabilityError::io("append", name, e))
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        let file = self.handle(name)?;
        file.sync_data()
            .map_err(|e| DurabilityError::io("sync", name, e))
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<()> {
        self.handles.remove(name);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| DurabilityError::io("open", name, e))?;
        file.set_len(len)
            .map_err(|e| DurabilityError::io("truncate", name, e))?;
        file.sync_data()
            .map_err(|e| DurabilityError::io("sync", name, e))
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        self.handles.remove(name);
        std::fs::remove_file(self.path(name))
            .map_err(|e| DurabilityError::io("delete", name, e))?;
        self.sync_dir()
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        self.handles.remove(from);
        self.handles.remove(to);
        std::fs::rename(self.path(from), self.path(to))
            .map_err(|e| DurabilityError::io("rename", from, e))?;
        self.sync_dir()
    }
}

// ---------------------------------------------------------------------------
// MemVfs
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct MemFile {
    /// Bytes as written (what a reader sees before a crash).
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (prefix covered by `sync`).
    durable: Vec<u8>,
}

/// In-memory VFS with an explicit written/durable split.
///
/// `sync` promotes the written bytes to durable; [`MemVfs::crash`] produces
/// the filesystem a process kill would leave behind: every file rolled back
/// to its durable contents. Unsynced appends vanish; a `truncate` that was
/// never synced can even "resurrect" previously-durable bytes, exactly as a
/// real filesystem may.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    files: BTreeMap<String, MemFile>,
}

impl MemVfs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate a crash: return the filesystem as it would be found on
    /// restart, with every file reduced to its durable contents.
    #[must_use]
    pub fn crash(&self) -> MemVfs {
        let files = self
            .files
            .iter()
            .map(|(name, f)| {
                (
                    name.clone(),
                    MemFile {
                        data: f.durable.clone(),
                        durable: f.durable.clone(),
                    },
                )
            })
            .collect();
        MemVfs { files }
    }

    /// Durable length of a file (what would survive a crash), for tests
    /// asserting on fsync coverage.
    pub fn durable_len(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|f| f.durable.len() as u64) // lint:allow(cast) — widening
    }

    fn file_mut(&mut self, op: &'static str, name: &str) -> Result<&mut MemFile> {
        self.files
            .get_mut(name)
            .ok_or_else(|| DurabilityError::io(op, name, "no such file"))
    }
}

impl Vfs for MemVfs {
    fn list(&self) -> Result<Vec<String>> {
        Ok(self.files.keys().cloned().collect())
    }

    fn len(&self, name: &str) -> Result<u64> {
        self.files
            .get(name)
            .map(|f| f.data.len() as u64) // lint:allow(cast) — widening
            .ok_or_else(|| DurabilityError::io("len", name, "no such file"))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        self.files
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| DurabilityError::io("read", name, "no such file"))
    }

    fn create(&mut self, name: &str) -> Result<()> {
        // A created file survives a crash as empty: this models DiskVfs,
        // whose `create` flushes the directory entry (contents still need a
        // `sync` to become durable).
        self.files.insert(name.to_string(), MemFile::default());
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<()> {
        self.file_mut("append", name)?.data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        let file = self.file_mut("sync", name)?;
        file.durable = file.data.clone();
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<()> {
        let file = self.file_mut("truncate", name)?;
        let len = usize::try_from(len)
            .map_err(|_| DurabilityError::io("truncate", name, "length exceeds usize"))?;
        file.data.truncate(len);
        Ok(())
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        self.files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DurabilityError::io("delete", name, "no such file"))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        let mut file = self
            .files
            .remove(from)
            .ok_or_else(|| DurabilityError::io("rename", from, "no such file"))?;
        // Rename is durable: the moved name refers to the written contents,
        // and callers sync file data before renaming it into place.
        file.durable = file.data.clone();
        self.files.insert(to.to_string(), file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_discards_unsynced_appends() {
        let mut vfs = MemVfs::new();
        vfs.create("a").unwrap();
        vfs.append("a", b"hello").unwrap();
        vfs.sync("a").unwrap();
        vfs.append("a", b" world").unwrap();
        assert_eq!(vfs.read("a").unwrap(), b"hello world");
        let crashed = vfs.crash();
        assert_eq!(crashed.read("a").unwrap(), b"hello");
    }

    #[test]
    fn mem_rename_is_durable() {
        let mut vfs = MemVfs::new();
        vfs.create("tmp").unwrap();
        vfs.append("tmp", b"snapshot").unwrap();
        vfs.sync("tmp").unwrap();
        vfs.rename("tmp", "final").unwrap();
        let crashed = vfs.crash();
        assert_eq!(crashed.read("final").unwrap(), b"snapshot");
        assert!(crashed.read("tmp").is_err());
    }

    #[test]
    fn disk_vfs_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "ojv-vfs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut vfs = DiskVfs::open(&dir).unwrap();
        vfs.create("wal-0.log").unwrap();
        vfs.append("wal-0.log", b"abcdef").unwrap();
        vfs.sync("wal-0.log").unwrap();
        assert_eq!(vfs.len("wal-0.log").unwrap(), 6);
        vfs.truncate("wal-0.log", 3).unwrap();
        assert_eq!(vfs.read("wal-0.log").unwrap(), b"abc");
        vfs.rename("wal-0.log", "wal-1.log").unwrap();
        assert_eq!(vfs.list().unwrap(), vec!["wal-1.log".to_string()]);
        vfs.delete("wal-1.log").unwrap();
        assert!(vfs.list().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
