//! Durable maintenance log: WAL, checkpoints, and the VFS they write through.
//!
//! The paper (§1, §5) frames view maintenance as applying a *logged stream of
//! update batches* incrementally; this crate supplies that log. It is the
//! only crate in the workspace allowed to touch `std::fs` (enforced by the
//! `fs-outside-durability` xtask lint) and has zero dependencies, even
//! in-repo: everything here is byte-level. Encoding of `Update`/catalog
//! state lives upstream in `ojv-rel`/`ojv-storage`/`ojv-core`.
//!
//! * [`vfs`] — a tiny virtual filesystem: [`DiskVfs`] over `std::fs` and
//!   [`MemVfs`], which models the data/durable split so tests can "crash" a
//!   database and observe exactly what fsync ordering guaranteed,
//! * [`crc32c`] — table-driven CRC-32C (Castagnoli), the checksum guarding
//!   every WAL record and checkpoint,
//! * [`wal`] — segmented append-only log of length-prefixed records with
//!   monotonically increasing LSNs and an [`FsyncPolicy`],
//! * [`checkpoint`] — versioned binary snapshots stamped with the
//!   high-water LSN, written atomically via tmp+rename.
//!
//! Recovery is *not* implemented here: replaying surviving WAL records
//! through the incremental `maintain()` path is `ojv-core`'s job
//! (`DurableDatabase`); this crate only guarantees which bytes survive.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod crc32c;
pub mod error;
pub mod vfs;
pub mod wal;

pub use checkpoint::{
    is_checkpoint_file, prune_checkpoints, read_latest_checkpoint, write_checkpoint, Checkpoint,
};
pub use crc32c::crc32c;
pub use error::DurabilityError;
pub use vfs::{DiskVfs, MemVfs, Vfs};
pub use wal::{
    is_segment_file, scan_segment, FsyncPolicy, Lsn, SegmentRecord, TailTruncation, Wal,
    WalOptions, WalRecord, WalScan,
};
