//! Segmented append-only write-ahead log.
//!
//! ## Record format (little-endian)
//!
//! ```text
//! +------------+-----------+-----------+---------+------------------+
//! | len: u32   | crc: u32  | lsn: u64  | kind:u8 | payload: len B   |
//! +------------+-----------+-----------+---------+------------------+
//! 0            4           8           16        17
//! ```
//!
//! `crc` is CRC-32C over every other record byte (`len ‖ lsn ‖ kind ‖
//! payload` — the crc field itself is skipped), so corruption of the length
//! prefix is caught too. LSNs start at 1 and increase by exactly 1 per
//! record across segment boundaries.
//!
//! ## Segment format
//!
//! Each segment file `wal-{first_lsn:016x}.log` starts with a 16-byte
//! header: magic `OJVWAL01` followed by the `u64` LSN of the segment's
//! first record. Fixed-width hex names make lexicographic order equal LSN
//! order. The segment is rotated (after an fsync of the outgoing file) once
//! it exceeds [`WalOptions::segment_bytes`], so a torn tail can only ever
//! be in the *last* segment.
//!
//! ## Recovery scan
//!
//! [`Wal::open`] scans segments in order and stops at the first record that
//! is torn (short read), CRC-invalid, or breaks LSN continuity. Everything
//! from that point on — the rest of the file and all later segments — is
//! discarded: the tail is truncated, later segments deleted, and the cut
//! reported as a [`TailTruncation`]. A valid record after an invalid one is
//! unreachable by construction (appends are sequential), so this never
//! drops committed data that a correct fsync policy promised to keep.

use crate::crc32c::{crc32c_finish, crc32c_init, crc32c_update};
use crate::error::{DurabilityError, Result};
use crate::vfs::Vfs;

/// Log sequence number: 1-based, dense, monotonically increasing.
pub type Lsn = u64;

/// Bytes before the payload: `len(4) ‖ crc(4) ‖ lsn(8) ‖ kind(1)`.
pub const RECORD_HEADER_LEN: usize = 17;
/// Bytes at the start of every segment: magic(8) ‖ first_lsn(8).
pub const SEGMENT_HEADER_LEN: usize = 16;
/// Segment magic, versioned: bump the trailing digits on format changes.
pub const SEGMENT_MAGIC: &[u8; 8] = b"OJVWAL01";

/// When the WAL fsyncs the active segment.
///
/// Carried by `MaintenancePolicy` so durability cost sits next to the other
/// maintenance knobs the paper's experiments vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended record: no committed batch is ever lost.
    #[default]
    Always,
    /// fsync after every N appended records: bounded loss window of at most
    /// N-1 batches, amortized fsync cost.
    EveryN(u32),
    /// fsync only when a checkpoint is taken (and on segment rotation):
    /// everything since the last checkpoint may be lost.
    OnCheckpoint,
    /// Never fsync on the append path (rotation still syncs). Benchmarks
    /// only — measures pure framing + write overhead.
    Never,
}

/// Tuning for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// fsync cadence for appends.
    pub policy: FsyncPolicy,
    /// Rotate to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            policy: FsyncPolicy::Always,
            segment_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// This record's log sequence number.
    pub lsn: Lsn,
    /// Application-defined record kind tag (`ojv-core` defines the values).
    pub kind: u8,
    /// Application payload bytes.
    pub payload: Vec<u8>,
}

/// A record plus where it ends inside its segment — the crash-point matrix
/// test uses `end_offset` to enumerate record boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRecord {
    /// The decoded record.
    pub record: WalRecord,
    /// Byte offset one past this record within the segment file.
    pub end_offset: u64,
}

/// Report of a tail cut made during [`Wal::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailTruncation {
    /// Segment the first invalid record was found in.
    pub file: String,
    /// Length the segment was truncated to (0 means the whole file, header
    /// included, was invalid and the file was deleted).
    pub valid_len: u64,
    /// Bytes discarded across this segment and all later ones.
    pub dropped_bytes: u64,
    /// Why the scan stopped.
    pub reason: String,
}

/// Result of opening a WAL: every surviving record plus the truncation
/// performed, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// All valid records, in LSN order, across all segments.
    pub records: Vec<WalRecord>,
    /// The cut made at the first torn/corrupt record, if one was found.
    pub truncated: Option<TailTruncation>,
}

/// Outcome of scanning one segment's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Records decoded before the scan stopped.
    pub records: Vec<SegmentRecord>,
    /// Prefix of the segment that is valid (header + whole records).
    pub valid_len: u64,
    /// Why the scan stopped early, if it did not consume the whole file.
    pub torn: Option<String>,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(b)
}

fn get_u64(data: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(b)
}

fn segment_name(first_lsn: Lsn) -> String {
    format!("wal-{first_lsn:016x}.log")
}

/// Parse `wal-{lsn:016x}.log` back into its first LSN.
fn parse_segment_name(name: &str) -> Option<Lsn> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    Lsn::from_str_radix(hex, 16).ok()
}

/// Whether `name` is a WAL segment file (`wal-{lsn:016x}.log`).
pub fn is_segment_file(name: &str) -> bool {
    parse_segment_name(name).is_some()
}

fn encode_segment_header(first_lsn: Lsn) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SEGMENT_HEADER_LEN);
    buf.extend_from_slice(SEGMENT_MAGIC);
    put_u64(&mut buf, first_lsn);
    buf
}

/// Frame one record. Fails only if the payload cannot be length-prefixed.
fn encode_record(lsn: Lsn, kind: u8, payload: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len()).map_err(|_| DurabilityError::Limit {
        detail: format!("wal payload of {} bytes exceeds u32 framing", payload.len()),
    })?;
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    put_u32(&mut buf, len);
    put_u32(&mut buf, 0); // crc placeholder
    put_u64(&mut buf, lsn);
    buf.push(kind);
    buf.extend_from_slice(payload);
    let mut crc = crc32c_init();
    crc = crc32c_update(crc, &buf[0..4]); // len
    crc = crc32c_update(crc, &buf[8..]); // lsn ‖ kind ‖ payload
    let crc = crc32c_finish(crc);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    Ok(buf)
}

/// Scan one segment's bytes, validating the header and each record in turn.
///
/// `expect_first_lsn` is the LSN the segment must start at (`None` accepts
/// whatever the header claims — only used by tooling). The scan stops at the
/// first torn, CRC-invalid, or LSN-discontinuous record; everything before
/// it is returned along with the valid prefix length. This function never
/// touches a VFS, so tests can drive it over arbitrary byte mutations.
pub fn scan_segment(name: &str, data: &[u8], expect_first_lsn: Option<Lsn>) -> SegmentScan {
    let mut records = Vec::new();
    // Header checks: a bad header invalidates the whole file (valid_len 0).
    if data.len() < SEGMENT_HEADER_LEN {
        return SegmentScan {
            records,
            valid_len: 0,
            torn: Some(format!(
                "{name}: short segment header ({} bytes)",
                data.len()
            )),
        };
    }
    if &data[0..8] != SEGMENT_MAGIC {
        return SegmentScan {
            records,
            valid_len: 0,
            torn: Some(format!("{name}: bad segment magic")),
        };
    }
    let header_first = get_u64(data, 8);
    let name_first = parse_segment_name(name);
    if name_first.is_some() && name_first != Some(header_first) {
        return SegmentScan {
            records,
            valid_len: 0,
            torn: Some(format!(
                "{name}: header first-lsn {header_first} disagrees with file name"
            )),
        };
    }
    if let Some(expect) = expect_first_lsn {
        if header_first != expect {
            return SegmentScan {
                records,
                valid_len: 0,
                torn: Some(format!(
                    "{name}: expected first lsn {expect}, header says {header_first}"
                )),
            };
        }
    }

    let mut offset = SEGMENT_HEADER_LEN;
    let mut next_lsn = header_first;
    let torn;
    loop {
        if offset == data.len() {
            torn = None;
            break;
        }
        if data.len() - offset < RECORD_HEADER_LEN {
            torn = Some(format!("{name}: torn record header at offset {offset}"));
            break;
        }
        let len = get_u32(data, offset) as usize; // lint:allow(cast) — u32 widens into usize
        let stored_crc = get_u32(data, offset + 4);
        let lsn = get_u64(data, offset + 8);
        let kind = data[offset + RECORD_HEADER_LEN - 1];
        let end = match offset
            .checked_add(RECORD_HEADER_LEN)
            .and_then(|x| x.checked_add(len))
        {
            Some(end) if end <= data.len() => end,
            _ => {
                torn = Some(format!(
                    "{name}: torn payload at offset {offset} (len {len})"
                ));
                break;
            }
        };
        let mut crc = crc32c_init();
        crc = crc32c_update(crc, &data[offset..offset + 4]);
        crc = crc32c_update(crc, &data[offset + 8..end]);
        if crc32c_finish(crc) != stored_crc {
            torn = Some(format!("{name}: crc mismatch at offset {offset}"));
            break;
        }
        if lsn != next_lsn {
            torn = Some(format!(
                "{name}: lsn discontinuity at offset {offset}: expected {next_lsn}, found {lsn}"
            ));
            break;
        }
        let payload = data[offset + RECORD_HEADER_LEN..end].to_vec();
        records.push(SegmentRecord {
            record: WalRecord { lsn, kind, payload },
            end_offset: u64::try_from(end).unwrap_or(u64::MAX),
        });
        next_lsn += 1;
        offset = end;
    }
    let valid_len = records
        .last()
        .map(|r| r.end_offset)
        .unwrap_or(u64::try_from(SEGMENT_HEADER_LEN).unwrap_or(u64::MAX));
    SegmentScan {
        records,
        valid_len,
        torn,
    }
}

/// The write-ahead log: a chain of segments in a [`Vfs`] directory.
///
/// The `Wal` itself holds only cursor state (active segment, next LSN,
/// fsync counter); every operation takes the `Vfs` explicitly so tests can
/// interleave crashes.
#[derive(Debug)]
pub struct Wal {
    opts: WalOptions,
    /// Name of the segment currently appended to.
    active: String,
    /// Written length of the active segment.
    active_len: u64,
    /// LSN the next appended record will get.
    next_lsn: Lsn,
    /// Appends since the last sync, for `FsyncPolicy::EveryN`.
    unsynced: u32,
    /// First LSN of every live segment, ascending; last entry is `active`.
    segment_first_lsns: Vec<Lsn>,
}

impl Wal {
    /// Create a fresh WAL whose first record will get LSN `first_lsn`.
    pub fn create(vfs: &mut dyn Vfs, opts: WalOptions, first_lsn: Lsn) -> Result<Wal> {
        let name = segment_name(first_lsn);
        vfs.create(&name)?;
        vfs.append(&name, &encode_segment_header(first_lsn))?;
        vfs.sync(&name)?;
        Ok(Wal {
            opts,
            active: name,
            active_len: u64::try_from(SEGMENT_HEADER_LEN).unwrap_or(u64::MAX),
            next_lsn: first_lsn,
            unsynced: 0,
            segment_first_lsns: vec![first_lsn],
        })
    }

    /// Open an existing WAL directory, repairing any torn tail.
    ///
    /// Scans segments in LSN order, stops at the first invalid record,
    /// truncates that segment to its valid prefix (deleting it entirely if
    /// even the header is bad), and deletes all later segments. If the
    /// directory has no segments at all, a fresh one starting at
    /// `next_if_empty` is created (recovery passes `checkpoint_lsn + 1`).
    ///
    /// LSNs must be contiguous across segment boundaries, with one
    /// exception: a segment may start *ahead* of where the previous one
    /// ended as long as it starts at or below `next_if_empty`. Such a gap is
    /// the scar left by [`Wal::begin_after`] — a prior recovery found the
    /// log cut short below a checkpoint, and every skipped LSN is vouched
    /// for by that checkpoint. A gap reaching past `next_if_empty` is still
    /// treated as a torn tail, because it would skip records no checkpoint
    /// covers.
    pub fn open(vfs: &mut dyn Vfs, opts: WalOptions, next_if_empty: Lsn) -> Result<(Wal, WalScan)> {
        let mut segments: Vec<(Lsn, String)> = Vec::new();
        for name in vfs.list()? {
            if let Some(first) = parse_segment_name(&name) {
                segments.push((first, name));
            }
        }
        segments.sort();

        if segments.is_empty() {
            let wal = Wal::create(vfs, opts, next_if_empty)?;
            return Ok((
                wal,
                WalScan {
                    records: Vec::new(),
                    truncated: None,
                },
            ));
        }

        let mut records: Vec<WalRecord> = Vec::new();
        let mut truncated: Option<TailTruncation> = None;
        let mut live: Vec<(Lsn, String, u64)> = Vec::new(); // (first_lsn, name, valid_len)
        let mut expect_lsn = segments[0].0;
        let mut cut_at: Option<usize> = None;

        for (idx, (first, name)) in segments.iter().enumerate() {
            let data = vfs.read(name)?;
            let data_len = u64::try_from(data.len()).unwrap_or(u64::MAX);
            // Cross-segment continuity: this segment must begin exactly
            // where the previous one ended — or jump forward to at most
            // `next_if_empty`, the checkpoint-vouched gap a prior
            // `begin_after` leaves behind.
            let scan = if *first == expect_lsn || (*first > expect_lsn && *first <= next_if_empty) {
                scan_segment(name, &data, Some(*first))
            } else {
                SegmentScan {
                    records: Vec::new(),
                    valid_len: 0,
                    torn: Some(format!(
                        "{name}: segment starts at lsn {first}, expected {expect_lsn}"
                    )),
                }
            };
            for rec in &scan.records {
                records.push(rec.record.clone());
            }
            expect_lsn = *first + u64::try_from(scan.records.len()).unwrap_or(0);
            if let Some(reason) = scan.torn {
                truncated = Some(TailTruncation {
                    file: name.clone(),
                    valid_len: scan.valid_len,
                    dropped_bytes: data_len - scan.valid_len,
                    reason,
                });
                if scan.valid_len > 0 {
                    live.push((*first, name.clone(), scan.valid_len));
                }
                cut_at = Some(idx);
                break;
            }
            live.push((*first, name.clone(), data_len));
        }

        // Apply the cut: truncate the torn segment, delete later ones.
        if let Some(idx) = cut_at {
            let trunc = truncated.as_mut().expect("cut implies truncation");
            if trunc.valid_len > 0 {
                vfs.truncate(&trunc.file, trunc.valid_len)?;
                vfs.sync(&trunc.file)?;
            } else {
                vfs.delete(&trunc.file)?;
            }
            for (_, name) in &segments[idx + 1..] {
                trunc.dropped_bytes += vfs.len(name).unwrap_or(0);
                vfs.delete(name)?;
            }
        }

        let next_lsn = records
            .last()
            .map(|r| r.lsn + 1)
            .unwrap_or_else(|| {
                live.first()
                    .map(|(first, _, _)| *first)
                    .unwrap_or(next_if_empty)
            })
            // Never hand out an LSN below the active segment's first: a
            // record-less gap segment (begin_after, then crash before any
            // append survived) still claims its header's LSN.
            .max(live.last().map(|(first, _, _)| *first).unwrap_or(0));

        let wal = match live.last() {
            Some((_, name, valid_len)) => Wal {
                opts,
                active: name.clone(),
                active_len: *valid_len,
                next_lsn,
                unsynced: 0,
                segment_first_lsns: live.iter().map(|(first, _, _)| *first).collect(),
            },
            // Every segment was invalid: start over at the next LSN the
            // caller's checkpoint vouches for.
            None => Wal::create(vfs, opts, next_if_empty.max(next_lsn))?,
        };
        Ok((wal, WalScan { records, truncated }))
    }

    /// Append one record, returning its LSN. Durability follows the
    /// configured [`FsyncPolicy`].
    pub fn append(&mut self, vfs: &mut dyn Vfs, kind: u8, payload: &[u8]) -> Result<Lsn> {
        let lsn = self.next_lsn;
        let bytes = encode_record(lsn, kind, payload)?;
        let header_len = u64::try_from(SEGMENT_HEADER_LEN).unwrap_or(u64::MAX);
        let rec_len = u64::try_from(bytes.len()).unwrap_or(u64::MAX);
        // Rotate once the active segment holds at least one record and the
        // new record would push it past the limit. The outgoing segment is
        // synced first so a torn tail can only exist in the newest segment.
        if self.active_len > header_len && self.active_len + rec_len > self.opts.segment_bytes {
            vfs.sync(&self.active)?;
            let name = segment_name(lsn);
            vfs.create(&name)?;
            vfs.append(&name, &encode_segment_header(lsn))?;
            vfs.sync(&name)?;
            self.active = name;
            self.active_len = header_len;
            self.unsynced = 0;
            self.segment_first_lsns.push(lsn);
        }
        vfs.append(&self.active, &bytes)?;
        self.active_len += rec_len;
        self.next_lsn += 1;
        match self.opts.policy {
            FsyncPolicy::Always => {
                vfs.sync(&self.active)?;
                self.unsynced = 0;
            }
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    vfs.sync(&self.active)?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::OnCheckpoint | FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Force everything appended so far to be durable.
    pub fn sync(&mut self, vfs: &mut dyn Vfs) -> Result<()> {
        vfs.sync(&self.active)?;
        self.unsynced = 0;
        Ok(())
    }

    /// LSN of the most recently appended record (0 if none ever was).
    pub fn last_lsn(&self) -> Lsn {
        self.next_lsn - 1
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// The segment currently being appended to.
    pub fn active_segment(&self) -> &str {
        &self.active
    }

    /// Rotate to a fresh segment whose first record will get `first_lsn`,
    /// skipping the LSNs in between.
    ///
    /// Recovery calls this when the surviving log ends at or below a
    /// checkpoint's LSN (a corrupt record below the checkpoint cut the scan
    /// short): appending at `next_lsn() <= checkpoint_lsn` would create
    /// records every later replay silently skips, losing acknowledged data.
    /// The checkpoint vouches for all LSNs at or below its own, so the log
    /// may legally resume at `checkpoint_lsn + 1`. Earlier segments are kept
    /// — records above a deferred view's refresh watermark are still needed
    /// to rebuild pending queues — and [`Wal::open`] accepts the resulting
    /// gap (see its docs).
    pub fn begin_after(&mut self, vfs: &mut dyn Vfs, first_lsn: Lsn) -> Result<()> {
        if first_lsn < self.next_lsn {
            return Err(DurabilityError::Corrupt {
                file: self.active.clone(),
                detail: format!(
                    "begin_after({first_lsn}) would move the log backwards from {}",
                    self.next_lsn
                ),
            });
        }
        vfs.sync(&self.active)?;
        let name = segment_name(first_lsn);
        vfs.create(&name)?;
        vfs.append(&name, &encode_segment_header(first_lsn))?;
        vfs.sync(&name)?;
        self.active = name;
        self.active_len = u64::try_from(SEGMENT_HEADER_LEN).unwrap_or(u64::MAX);
        self.next_lsn = first_lsn;
        self.unsynced = 0;
        self.segment_first_lsns.push(first_lsn);
        Ok(())
    }

    /// Delete segments that only contain records with LSN < `keep_from`.
    ///
    /// A segment is removable when the *next* segment starts at or before
    /// `keep_from` (so every record it holds is below the floor). The
    /// active segment is never removed. Callers pass the minimum of the
    /// checkpoint LSN and all deferred-view watermarks.
    pub fn prune_below(&mut self, vfs: &mut dyn Vfs, keep_from: Lsn) -> Result<()> {
        while self.segment_first_lsns.len() > 1 && self.segment_first_lsns[1] <= keep_from {
            let first = self.segment_first_lsns.remove(0);
            vfs.delete(&segment_name(first))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn opts(policy: FsyncPolicy, segment_bytes: u64) -> WalOptions {
        WalOptions {
            policy,
            segment_bytes,
        }
    }

    #[test]
    fn append_reopen_round_trip() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, WalOptions::default(), 1).unwrap();
        for i in 0..10u8 {
            let lsn = wal.append(&mut vfs, 7, &[i; 3]).unwrap();
            assert_eq!(lsn, u64::from(i) + 1);
        }
        assert_eq!(wal.last_lsn(), 10);
        let (reopened, scan) = Wal::open(&mut vfs, WalOptions::default(), 1).unwrap();
        assert!(scan.truncated.is_none());
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.records[4].payload, vec![4u8; 3]);
        assert_eq!(reopened.next_lsn(), 11);
    }

    #[test]
    fn rotation_keeps_lsns_dense_and_scan_complete() {
        let mut vfs = MemVfs::new();
        // Tiny segments: every record larger than the limit forces rotation.
        let mut wal = Wal::create(&mut vfs, opts(FsyncPolicy::Always, 64), 1).unwrap();
        for i in 0..20u8 {
            wal.append(&mut vfs, 1, &[i; 40]).unwrap();
        }
        let names = vfs.list().unwrap();
        assert!(names.len() > 1, "expected rotation, got {names:?}");
        let (_, scan) = Wal::open(&mut vfs, opts(FsyncPolicy::Always, 64), 1).unwrap();
        assert!(scan.truncated.is_none());
        let lsns: Vec<Lsn> = scan.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn crash_without_sync_loses_tail_cleanly() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, opts(FsyncPolicy::Never, 1 << 20), 1).unwrap();
        wal.append(&mut vfs, 1, b"one").unwrap();
        wal.sync(&mut vfs).unwrap();
        wal.append(&mut vfs, 1, b"two").unwrap(); // never synced
        let mut crashed = vfs.crash();
        let (wal2, scan) = Wal::open(&mut crashed, WalOptions::default(), 1).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"one");
        // The unsynced record vanished entirely (durable length cut), so
        // there is nothing to truncate — and the next LSN is reusable.
        assert_eq!(wal2.next_lsn(), 2);
    }

    #[test]
    fn torn_payload_is_truncated() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, WalOptions::default(), 1).unwrap();
        wal.append(&mut vfs, 1, b"first-record").unwrap();
        let lsn2 = wal.append(&mut vfs, 1, b"second-record").unwrap();
        assert_eq!(lsn2, 2);
        let name = wal.active_segment().to_string();
        // Tear the last record: drop its final 4 bytes.
        let len = vfs.len(&name).unwrap();
        vfs.truncate(&name, len - 4).unwrap();
        let (wal2, scan) = Wal::open(&mut vfs, WalOptions::default(), 1).unwrap();
        assert_eq!(scan.records.len(), 1);
        let trunc = scan.truncated.expect("tail cut expected");
        assert!(trunc.reason.contains("torn payload"), "{}", trunc.reason);
        assert_eq!(vfs.len(&name).unwrap(), trunc.valid_len);
        assert_eq!(wal2.next_lsn(), 2);
        // The repaired log accepts new appends and scans clean.
        let mut wal2 = wal2;
        wal2.append(&mut vfs, 1, b"replacement").unwrap();
        let (_, rescan) = Wal::open(&mut vfs, WalOptions::default(), 1).unwrap();
        assert!(rescan.truncated.is_none());
        assert_eq!(rescan.records.len(), 2);
    }

    #[test]
    fn bit_flip_is_detected_and_cut() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, WalOptions::default(), 1).unwrap();
        wal.append(&mut vfs, 1, b"aaaa").unwrap();
        wal.append(&mut vfs, 1, b"bbbb").unwrap();
        wal.append(&mut vfs, 1, b"cccc").unwrap();
        let name = wal.active_segment().to_string();
        let mut data = vfs.read(&name).unwrap();
        // Flip one bit in the middle record's payload.
        let second_start = SEGMENT_HEADER_LEN + RECORD_HEADER_LEN + 4;
        data[second_start + RECORD_HEADER_LEN] ^= 0x10;
        vfs.create(&name).unwrap();
        vfs.append(&name, &data).unwrap();
        let (_, scan) = Wal::open(&mut vfs, WalOptions::default(), 1).unwrap();
        // Record 1 survives; record 2 is CRC-invalid; record 3 is
        // unreachable past the cut even though its bytes were intact.
        assert_eq!(scan.records.len(), 1);
        let trunc = scan.truncated.expect("cut expected");
        assert!(trunc.reason.contains("crc mismatch"), "{}", trunc.reason);
    }

    #[test]
    fn torn_later_segment_is_deleted_whole() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, opts(FsyncPolicy::Always, 64), 1).unwrap();
        for i in 0..6u8 {
            wal.append(&mut vfs, 1, &[i; 40]).unwrap();
        }
        let names: Vec<String> = vfs.list().unwrap();
        assert!(names.len() >= 3);
        // Corrupt the *header* of the second segment: it and everything
        // after it must be discarded, the first segment kept.
        let victim = &names[1];
        let mut data = vfs.read(victim).unwrap();
        data[0] ^= 0xFF;
        vfs.create(victim).unwrap();
        vfs.append(victim, &data).unwrap();
        let (wal2, scan) = Wal::open(&mut vfs, opts(FsyncPolicy::Always, 64), 1).unwrap();
        let trunc = scan.truncated.expect("cut expected");
        assert_eq!(trunc.valid_len, 0);
        let survivors = vfs.list().unwrap();
        assert_eq!(survivors.len(), 1, "{survivors:?}");
        assert_eq!(scan.records.last().unwrap().lsn + 1, wal2.next_lsn());
    }

    #[test]
    fn every_n_policy_syncs_on_schedule() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, opts(FsyncPolicy::EveryN(3), 1 << 20), 1).unwrap();
        let name = wal.active_segment().to_string();
        wal.append(&mut vfs, 1, b"a").unwrap();
        wal.append(&mut vfs, 1, b"b").unwrap();
        let after_two = vfs.durable_len(&name).unwrap();
        // Only the segment header has been synced so far.
        assert_eq!(after_two, SEGMENT_HEADER_LEN as u64); // lint:allow(cast) — widening
        wal.append(&mut vfs, 1, b"c").unwrap();
        assert_eq!(vfs.durable_len(&name).unwrap(), vfs.len(&name).unwrap());
    }

    #[test]
    fn prune_below_removes_only_fully_covered_segments() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, opts(FsyncPolicy::Always, 64), 1).unwrap();
        for i in 0..9u8 {
            wal.append(&mut vfs, 1, &[i; 40]).unwrap();
        }
        let before = vfs.list().unwrap().len();
        assert!(before >= 3);
        // Keep everything from LSN 1: nothing may be pruned.
        wal.prune_below(&mut vfs, 1).unwrap();
        assert_eq!(vfs.list().unwrap().len(), before);
        // Keep from the last LSN: all but the active segment (and any
        // segment straddling the floor) go away.
        wal.prune_below(&mut vfs, wal.last_lsn()).unwrap();
        let after = vfs.list().unwrap();
        assert!(after.len() < before, "{after:?}");
        // Scan still works and still reaches the last LSN.
        let last = wal.last_lsn();
        let (wal2, scan) = Wal::open(&mut vfs, opts(FsyncPolicy::Always, 64), 1).unwrap();
        assert_eq!(scan.records.last().unwrap().lsn, last);
        assert_eq!(wal2.next_lsn(), last + 1);
    }

    #[test]
    fn begin_after_skips_to_the_vouched_lsn_and_reopens() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, WalOptions::default(), 1).unwrap();
        wal.append(&mut vfs, 1, b"kept").unwrap();
        // Records 2..=5 were lost to corruption but a checkpoint at LSN 5
        // vouches for them: resume at 6.
        wal.begin_after(&mut vfs, 6).unwrap();
        assert_eq!(wal.next_lsn(), 6);
        let lsn = wal.append(&mut vfs, 1, b"after-gap").unwrap();
        assert_eq!(lsn, 6);
        // Reopen with the checkpoint horizon at 5: the gap is accepted, the
        // earlier segment's records survive, and the log stays appendable.
        let (wal2, scan) = Wal::open(&mut vfs, WalOptions::default(), 6).unwrap();
        assert!(scan.truncated.is_none(), "{:?}", scan.truncated);
        let lsns: Vec<Lsn> = scan.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![1, 6]);
        assert_eq!(wal2.next_lsn(), 7);
    }

    #[test]
    fn gap_past_the_checkpoint_horizon_is_cut() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, WalOptions::default(), 1).unwrap();
        wal.append(&mut vfs, 1, b"kept").unwrap();
        wal.begin_after(&mut vfs, 6).unwrap();
        wal.append(&mut vfs, 1, b"after-gap").unwrap();
        // A horizon of 4 does not vouch for LSN 5: the gap segment must be
        // discarded as a torn tail, not silently accepted.
        let (wal2, scan) = Wal::open(&mut vfs, WalOptions::default(), 4).unwrap();
        let trunc = scan.truncated.expect("gap beyond horizon must be cut");
        assert!(trunc.reason.contains("expected"), "{}", trunc.reason);
        assert_eq!(scan.records.len(), 1);
        // The survivor ends at LSN 1; it is the caller's job (recovery) to
        // notice next_lsn <= checkpoint_lsn and begin_after the horizon.
        assert_eq!(wal2.next_lsn(), 2);
    }

    #[test]
    fn record_less_gap_segment_still_claims_its_lsn() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, WalOptions::default(), 1).unwrap();
        wal.append(&mut vfs, 1, b"kept").unwrap();
        wal.begin_after(&mut vfs, 6).unwrap();
        // Crash before anything lands in the gap segment: the next append
        // must still get LSN 6 (the segment header claims it), never 2.
        let (wal2, scan) = Wal::open(&mut vfs, WalOptions::default(), 6).unwrap();
        assert!(scan.truncated.is_none(), "{:?}", scan.truncated);
        assert_eq!(wal2.next_lsn(), 6);
    }

    #[test]
    fn begin_after_refuses_to_move_backwards() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create(&mut vfs, WalOptions::default(), 1).unwrap();
        wal.append(&mut vfs, 1, b"a").unwrap();
        wal.append(&mut vfs, 1, b"b").unwrap();
        assert!(wal.begin_after(&mut vfs, 2).is_err());
    }

    #[test]
    fn empty_directory_starts_at_requested_lsn() {
        let mut vfs = MemVfs::new();
        let (wal, scan) = Wal::open(&mut vfs, WalOptions::default(), 42).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.next_lsn(), 42);
    }
}
