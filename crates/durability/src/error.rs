//! Error type for the durability layer.
//!
//! `std::io::Error` is neither `Clone` nor `PartialEq`, both of which the
//! workspace's error types provide (differential tests compare errors
//! structurally), so I/O failures are captured as `{op, file, detail}`
//! strings at the VFS boundary.

use std::fmt;

/// Everything that can go wrong below the recovery layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io {
        /// VFS operation (`"read"`, `"append"`, `"rename"`, ...).
        op: &'static str,
        /// File the operation targeted, relative to the VFS root.
        file: String,
        /// Stringified OS / VFS error.
        detail: String,
    },
    /// A file's contents are structurally invalid in a way that cannot be
    /// repaired by truncating a torn tail (e.g. a corrupt segment header or
    /// a checkpoint whose magic is wrong).
    Corrupt {
        /// File the corruption was found in.
        file: String,
        /// What was wrong.
        detail: String,
    },
    /// A record or payload exceeded a format limit (e.g. a payload longer
    /// than `u32::MAX` bytes cannot be length-prefixed).
    Limit {
        /// What was too large.
        detail: String,
    },
}

impl DurabilityError {
    /// Shorthand for an I/O error.
    pub fn io(op: &'static str, file: &str, detail: impl fmt::Display) -> Self {
        DurabilityError::Io {
            op,
            file: file.to_string(),
            detail: detail.to_string(),
        }
    }

    /// Shorthand for a corruption error.
    pub fn corrupt(file: &str, detail: impl Into<String>) -> Self {
        DurabilityError::Corrupt {
            file: file.to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { op, file, detail } => {
                write!(f, "io error during {op} on {file:?}: {detail}")
            }
            DurabilityError::Corrupt { file, detail } => {
                write!(f, "corrupt durable file {file:?}: {detail}")
            }
            DurabilityError::Limit { detail } => write!(f, "format limit exceeded: {detail}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DurabilityError>;
