//! Table-driven CRC-32C (Castagnoli).
//!
//! The Castagnoli polynomial (reversed form `0x82F6_3B78`) has better
//! error-detection properties for short messages than CRC-32/ISO-HDLC and
//! is the checksum iSCSI, ext4 and Btrfs use for exactly this job: catching
//! torn and bit-flipped log records. The 256-entry table is built at compile
//! time by a `const fn`, so there is no runtime init and no dependency.

/// Reversed (LSB-first) representation of the Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32; // lint:allow(cast) — i < 256, widening
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Continue a CRC-32C computation. `state` must come from [`crc32c_init`]
/// or a previous `crc32c_update` call.
#[must_use]
pub fn crc32c_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize; // lint:allow(cast) — masked to 8 bits
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc
}

/// Initial state for an incremental CRC-32C computation.
#[must_use]
pub fn crc32c_init() -> u32 {
    !0
}

/// Finalize an incremental CRC-32C computation.
#[must_use]
pub fn crc32c_finish(state: u32) -> u32 {
    !state
}

/// CRC-32C of a byte slice in one shot.
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_finish(crc32c_update(crc32c_init(), data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The standard CRC catalog check value for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_and_zeroes() {
        assert_eq!(crc32c(b""), 0);
        // 32 bytes of zeroes — known value for CRC-32C (iSCSI test vector).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            let inc = crc32c_finish(crc32c_update(crc32c_update(crc32c_init(), a), b));
            assert_eq!(inc, crc32c(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"record payload under test";
        let base = crc32c(data);
        let mut buf = data.to_vec();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32c(&buf), base, "flip at byte {byte} bit {bit}");
                buf[byte] ^= 1 << bit;
            }
        }
    }
}
