//! Versioned binary checkpoints stamped with a high-water LSN.
//!
//! ## File format (little-endian)
//!
//! ```text
//! +-------------+--------------+-----------+-----------------+----------------+----------+
//! | magic: 8 B  | version: u32 | lsn: u64  | payload_len:u32 | payload        | crc: u32 |
//! +-------------+--------------+-----------+-----------------+----------------+----------+
//! 0             8              12          20                24               24+len
//! ```
//!
//! `crc` is CRC-32C over every preceding byte. The payload is opaque here —
//! `ojv-core` serializes the catalog and every view's term state into it.
//!
//! ## Atomicity
//!
//! A checkpoint is written to `ckpt-{lsn:016x}.tmp`, synced, then renamed to
//! `ckpt-{lsn:016x}.snap`. Since [`Vfs::rename`] is atomic with respect to
//! crashes, a reader only ever sees complete `.snap` files or none; stray
//! `.tmp` files are garbage from a crashed writer and are deleted on read.
//! [`read_latest_checkpoint`] additionally verifies the CRC and falls back
//! to the next-newest snapshot if the newest is damaged, so a corrupted
//! checkpoint degrades recovery (longer replay) rather than breaking it.

use crate::crc32c::crc32c;
use crate::error::{DurabilityError, Result};
use crate::vfs::Vfs;
use crate::wal::Lsn;

/// Checkpoint magic, versioned by the trailing digit.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"OJVCKPT1";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A decoded, CRC-verified checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// High-water LSN: every WAL record with `lsn <= lsn` is reflected in
    /// the payload; recovery replays strictly greater LSNs.
    pub lsn: Lsn,
    /// Format version the file was written with.
    pub version: u32,
    /// Opaque application payload.
    pub payload: Vec<u8>,
    /// File the checkpoint was read from.
    pub file: String,
}

fn snap_name(lsn: Lsn) -> String {
    format!("ckpt-{lsn:016x}.snap")
}

fn tmp_name(lsn: Lsn) -> String {
    format!("ckpt-{lsn:016x}.tmp")
}

fn parse_snap_name(name: &str) -> Option<Lsn> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    Lsn::from_str_radix(hex, 16).ok()
}

/// Whether `name` is a checkpoint file — a finished `.snap` or a leftover
/// `.tmp` from a crashed writer.
pub fn is_checkpoint_file(name: &str) -> bool {
    parse_snap_name(name).is_some() || (name.starts_with("ckpt-") && name.ends_with(".tmp"))
}

/// Write a checkpoint atomically (tmp + sync + rename). Returns the final
/// file name.
pub fn write_checkpoint(vfs: &mut dyn Vfs, lsn: Lsn, payload: &[u8]) -> Result<String> {
    let len = u32::try_from(payload.len()).map_err(|_| DurabilityError::Limit {
        detail: format!(
            "checkpoint payload of {} bytes exceeds u32 framing",
            payload.len()
        ),
    })?;
    let mut buf = Vec::with_capacity(24 + payload.len() + 4);
    buf.extend_from_slice(CHECKPOINT_MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&lsn.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = tmp_name(lsn);
    let snap = snap_name(lsn);
    vfs.create(&tmp)?;
    vfs.append(&tmp, &buf)?;
    vfs.sync(&tmp)?;
    vfs.rename(&tmp, &snap)?;
    Ok(snap)
}

fn decode_checkpoint(file: &str, data: &[u8]) -> Result<Checkpoint> {
    if data.len() < 28 {
        return Err(DurabilityError::corrupt(file, "short checkpoint"));
    }
    if &data[0..8] != CHECKPOINT_MAGIC {
        return Err(DurabilityError::corrupt(file, "bad checkpoint magic"));
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    u32buf.copy_from_slice(&data[8..12]);
    let version = u32::from_le_bytes(u32buf);
    if version != CHECKPOINT_VERSION {
        return Err(DurabilityError::corrupt(
            file,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    u64buf.copy_from_slice(&data[12..20]);
    let lsn = u64::from_le_bytes(u64buf);
    u32buf.copy_from_slice(&data[20..24]);
    let payload_len = u32::from_le_bytes(u32buf) as usize; // lint:allow(cast) — u32 widens into usize
    let end = 24usize
        .checked_add(payload_len)
        .ok_or_else(|| DurabilityError::corrupt(file, "payload length overflow"))?;
    if data.len() != end + 4 {
        return Err(DurabilityError::corrupt(
            file,
            format!(
                "checkpoint length mismatch: file {} bytes, framed {}",
                data.len(),
                end + 4
            ),
        ));
    }
    u32buf.copy_from_slice(&data[end..end + 4]);
    let stored_crc = u32::from_le_bytes(u32buf);
    if crc32c(&data[..end]) != stored_crc {
        return Err(DurabilityError::corrupt(file, "checkpoint crc mismatch"));
    }
    Ok(Checkpoint {
        lsn,
        version,
        payload: data[24..end].to_vec(),
        file: file.to_string(),
    })
}

/// Read the newest valid checkpoint, deleting stray `.tmp` files and
/// skipping (but not deleting) damaged snapshots. Returns `None` if no
/// valid checkpoint exists.
pub fn read_latest_checkpoint(vfs: &mut dyn Vfs) -> Result<Option<Checkpoint>> {
    let mut snaps: Vec<(Lsn, String)> = Vec::new();
    for name in vfs.list()? {
        if name.starts_with("ckpt-") && name.ends_with(".tmp") {
            // Leftover from a writer that crashed mid-checkpoint.
            vfs.delete(&name)?;
            continue;
        }
        if let Some(lsn) = parse_snap_name(&name) {
            snaps.push((lsn, name));
        }
    }
    snaps.sort();
    while let Some((_, name)) = snaps.pop() {
        let data = vfs.read(&name)?;
        match decode_checkpoint(&name, &data) {
            Ok(ckpt) => return Ok(Some(ckpt)),
            Err(_) => continue, // damaged: fall back to the next-newest
        }
    }
    Ok(None)
}

/// Delete all `.snap` files with an LSN below `keep_from`, except the
/// newest one (recovery always needs at least one checkpoint to start
/// from).
pub fn prune_checkpoints(vfs: &mut dyn Vfs, keep_from: Lsn) -> Result<()> {
    let mut snaps: Vec<(Lsn, String)> = Vec::new();
    for name in vfs.list()? {
        if let Some(lsn) = parse_snap_name(&name) {
            snaps.push((lsn, name));
        }
    }
    snaps.sort();
    if let Some(newest_lsn) = snaps.last().map(|(lsn, _)| *lsn) {
        for (lsn, name) in &snaps {
            if *lsn < keep_from && *lsn != newest_lsn {
                vfs.delete(name)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn write_read_round_trip() {
        let mut vfs = MemVfs::new();
        let name = write_checkpoint(&mut vfs, 17, b"catalog-bytes").unwrap();
        assert_eq!(name, "ckpt-0000000000000011.snap");
        let ckpt = read_latest_checkpoint(&mut vfs).unwrap().unwrap();
        assert_eq!(ckpt.lsn, 17);
        assert_eq!(ckpt.payload, b"catalog-bytes");
    }

    #[test]
    fn newest_valid_wins_and_damaged_fall_back() {
        let mut vfs = MemVfs::new();
        write_checkpoint(&mut vfs, 5, b"old").unwrap();
        let newest = write_checkpoint(&mut vfs, 9, b"new").unwrap();
        // Corrupt the newest snapshot's payload.
        let mut data = vfs.read(&newest).unwrap();
        data[25] ^= 0x01;
        vfs.create(&newest).unwrap();
        vfs.append(&newest, &data).unwrap();
        let ckpt = read_latest_checkpoint(&mut vfs).unwrap().unwrap();
        assert_eq!(ckpt.lsn, 5);
        assert_eq!(ckpt.payload, b"old");
    }

    #[test]
    fn crash_before_rename_leaves_old_checkpoint_intact() {
        let mut vfs = MemVfs::new();
        write_checkpoint(&mut vfs, 3, b"stable").unwrap();
        // Simulate a writer that crashed after writing the tmp file.
        vfs.create("ckpt-0000000000000008.tmp").unwrap();
        vfs.append("ckpt-0000000000000008.tmp", b"half-written")
            .unwrap();
        let mut crashed = vfs.crash();
        let ckpt = read_latest_checkpoint(&mut crashed).unwrap().unwrap();
        assert_eq!(ckpt.lsn, 3);
        // The stray tmp was cleaned up.
        assert!(crashed.list().unwrap().iter().all(|n| !n.ends_with(".tmp")));
    }

    #[test]
    fn prune_keeps_newest() {
        let mut vfs = MemVfs::new();
        write_checkpoint(&mut vfs, 2, b"a").unwrap();
        write_checkpoint(&mut vfs, 4, b"b").unwrap();
        write_checkpoint(&mut vfs, 6, b"c").unwrap();
        prune_checkpoints(&mut vfs, 100).unwrap();
        let left = vfs.list().unwrap();
        assert_eq!(left, vec!["ckpt-0000000000000006.snap".to_string()]);
    }

    #[test]
    fn empty_directory_has_no_checkpoint() {
        let mut vfs = MemVfs::new();
        assert!(read_latest_checkpoint(&mut vfs).unwrap().is_none());
    }
}
