//! Subscription filters and projections.
//!
//! A [`FeedFilter`] is a conjunction of atoms over a view's *output*
//! columns. Evaluation maps each output column through the view's
//! projection onto the stored wide rows, so a row is filtered in place —
//! never widened, copied, or re-projected just to be rejected.
//!
//! Evaluation is deliberately confined to this crate: the `feed-eval-confined`
//! xtask lint bans `matches_row` call sites outside `crates/feed`, so every
//! subscription predicate runs through the deduplicated fan-out (or an
//! explicitly allowed escape), never ad hoc per-subscriber loops elsewhere.

use ojv_algebra::CmpOp;
use ojv_rel::{put_datum, put_str, put_u32, put_u64, Datum};

use crate::error::{FeedError, Result};

/// One conjunct of a subscription filter, over view output columns.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedAtom {
    /// `col <op> literal` with SQL comparison semantics: a `Null` on either
    /// side never matches (use [`FeedAtom::IsNull`] / [`FeedAtom::IsNotNull`]
    /// to test for the padding nulls outer joins introduce).
    Cmp { col: usize, op: CmpOp, lit: Datum },
    /// Output column is `Null` (e.g. the null-extended side of an outer
    /// join).
    IsNull { col: usize },
    /// Output column is non-`Null`.
    IsNotNull { col: usize },
}

impl FeedAtom {
    fn col(&self) -> usize {
        match self {
            FeedAtom::Cmp { col, .. } | FeedAtom::IsNull { col } | FeedAtom::IsNotNull { col } => {
                *col
            }
        }
    }

    /// Evaluate against a wide row; output column `i` lives at
    /// `row[cols[i]]`.
    fn matches_row(&self, row: &[Datum], cols: &[usize]) -> bool {
        match self {
            FeedAtom::Cmp { col, op, lit } => {
                let v = &row[cols[*col]];
                if matches!(v, Datum::Null) || matches!(lit, Datum::Null) {
                    return false;
                }
                op.eval(v.cmp(lit))
            }
            FeedAtom::IsNull { col } => matches!(row[cols[*col]], Datum::Null),
            FeedAtom::IsNotNull { col } => !matches!(row[cols[*col]], Datum::Null),
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FeedAtom::Cmp { col, op, lit } => {
                buf.push(0);
                put_u32(buf, *col as u32); // lint:allow(cast) — column index
                buf.push(cmp_tag(*op));
                put_datum(buf, lit).expect("filter literals fit u32 framing");
            }
            FeedAtom::IsNull { col } => {
                buf.push(1);
                put_u32(buf, *col as u32); // lint:allow(cast) — column index
            }
            FeedAtom::IsNotNull { col } => {
                buf.push(2);
                put_u32(buf, *col as u32); // lint:allow(cast) — column index
            }
        }
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

/// A conjunction of [`FeedAtom`]s; the empty conjunction matches every row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeedFilter {
    atoms: Vec<FeedAtom>,
}

impl FeedFilter {
    /// The match-all filter.
    pub fn all() -> Self {
        FeedFilter { atoms: Vec::new() }
    }

    pub fn new(atoms: Vec<FeedAtom>) -> Self {
        FeedFilter { atoms }
    }

    /// Single-comparison filter: `col <op> lit`.
    pub fn cmp(col: usize, op: CmpOp, lit: Datum) -> Self {
        FeedFilter {
            atoms: vec![FeedAtom::Cmp { col, op, lit }],
        }
    }

    /// Conjoin another atom (builder style).
    pub fn and(mut self, atom: FeedAtom) -> Self {
        self.atoms.push(atom);
        self
    }

    pub fn atoms(&self) -> &[FeedAtom] {
        &self.atoms
    }

    /// Evaluate the conjunction against a stored wide row, with output
    /// column `i` of the view at `row[cols[i]]`. This is *the* subscription
    /// predicate entry point the `feed-eval-confined` lint pins to this
    /// crate.
    pub fn matches_row(&self, row: &[Datum], cols: &[usize]) -> bool {
        self.atoms.iter().all(|a| a.matches_row(row, cols))
    }

    /// Largest output column any atom references.
    pub fn max_col(&self) -> Option<usize> {
        self.atoms.iter().map(|a| a.col()).max()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.atoms.len() as u32); // lint:allow(cast) — atom count
        for a in &self.atoms {
            a.encode(buf);
        }
    }
}

/// A subscription request: a view, an optional filter, and an optional
/// column projection (output column indexes; `None` delivers every output
/// column). Two specs that resolve identically share one evaluation in the
/// hub.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionSpec {
    pub view: String,
    pub filter: FeedFilter,
    pub projection: Option<Vec<usize>>,
}

impl SubscriptionSpec {
    /// Subscribe to every row of `view`.
    pub fn on(view: &str) -> Self {
        SubscriptionSpec {
            view: view.to_string(),
            filter: FeedFilter::all(),
            projection: None,
        }
    }

    pub fn with_filter(mut self, filter: FeedFilter) -> Self {
        self.filter = filter;
        self
    }

    pub fn with_projection(mut self, cols: Vec<usize>) -> Self {
        self.projection = Some(cols);
        self
    }

    /// Validate column references against the view's output width and
    /// resolve the projection (`None` → all output columns).
    pub(crate) fn resolve(&self, width: usize) -> Result<Vec<usize>> {
        let bad = |column: usize| FeedError::BadColumn {
            view: self.view.clone(),
            column,
            width,
        };
        if let Some(c) = self.filter.max_col() {
            if c >= width {
                return Err(bad(c));
            }
        }
        match &self.projection {
            Some(cols) => {
                if let Some(&c) = cols.iter().find(|&&c| c >= width) {
                    return Err(bad(c));
                }
                Ok(cols.clone())
            }
            None => Ok((0..width).collect()),
        }
    }

    /// Canonical fingerprint of `(view, filter, resolved projection)` — the
    /// dedup identity: equal fingerprints share one evaluation per commit.
    /// `projection` must already be resolved (see
    /// [`SubscriptionSpec::resolve`]) so `None` and an explicit full
    /// projection collide, as they should.
    pub(crate) fn fingerprint(&self, projection: &[usize]) -> u64 {
        let mut buf = Vec::new();
        put_str(&mut buf, &self.view).expect("view names fit u32 framing");
        self.filter.encode(&mut buf);
        put_u32(&mut buf, projection.len() as u32); // lint:allow(cast) — column count
        for &c in projection {
            put_u64(&mut buf, c as u64); // lint:allow(cast) — usize widens into u64
        }
        fnv1a(&buf)
    }

    /// Fingerprint of the filter alone (the trie's mid level: subscriptions
    /// sharing a filter share its evaluation even when projections differ).
    pub(crate) fn filter_fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        self.filter.encode(&mut buf);
        fnv1a(&buf)
    }
}

/// FNV-1a over a canonical byte encoding (the same construction the plan
/// fingerprints use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_semantics_are_sql_like() {
        let cols = [0usize, 1];
        let f = FeedFilter::cmp(1, CmpOp::Ge, Datum::Int(5));
        assert!(f.matches_row(&[Datum::Int(1), Datum::Int(5)], &cols));
        assert!(!f.matches_row(&[Datum::Int(1), Datum::Int(4)], &cols));
        // Null never compares true, not even under Ne.
        assert!(!f.matches_row(&[Datum::Int(1), Datum::Null], &cols));
        let ne = FeedFilter::cmp(1, CmpOp::Ne, Datum::Int(5));
        assert!(!ne.matches_row(&[Datum::Int(1), Datum::Null], &cols));
        let isnull = FeedFilter::new(vec![FeedAtom::IsNull { col: 1 }]);
        assert!(isnull.matches_row(&[Datum::Int(1), Datum::Null], &cols));
        assert!(!isnull.matches_row(&[Datum::Int(1), Datum::Int(0)], &cols));
    }

    #[test]
    fn conjunction_and_projection_mapping() {
        // Output col 0 lives at wide index 2, output col 1 at wide index 0.
        let cols = [2usize, 0];
        let f = FeedFilter::cmp(0, CmpOp::Eq, Datum::str("x")).and(FeedAtom::IsNotNull { col: 1 });
        let row = [Datum::Int(7), Datum::Null, Datum::str("x")];
        assert!(f.matches_row(&row, &cols));
        let row = [Datum::Null, Datum::Null, Datum::str("x")];
        assert!(!f.matches_row(&row, &cols));
        assert_eq!(f.max_col(), Some(1));
        assert_eq!(FeedFilter::all().max_col(), None);
    }

    #[test]
    fn fingerprints_dedup_identical_specs() {
        let a = SubscriptionSpec::on("v").with_filter(FeedFilter::cmp(1, CmpOp::Gt, Datum::Int(3)));
        let b = a.clone();
        let pa = a.resolve(4).unwrap();
        let pb = b.resolve(4).unwrap();
        assert_eq!(a.fingerprint(&pa), b.fingerprint(&pb));
        // None and the explicit full projection resolve identically.
        let c = a.clone().with_projection(vec![0, 1, 2, 3]);
        let pc = c.resolve(4).unwrap();
        assert_eq!(a.fingerprint(&pa), c.fingerprint(&pc));
        // Any differing component diverges.
        let d = a.clone().with_projection(vec![1]);
        let pd = d.resolve(4).unwrap();
        assert_ne!(a.fingerprint(&pa), d.fingerprint(&pd));
        let e = SubscriptionSpec::on("w").with_filter(a.filter.clone());
        assert_ne!(a.fingerprint(&pa), e.fingerprint(&pa));
        let f = SubscriptionSpec::on("v").with_filter(FeedFilter::cmp(1, CmpOp::Ge, Datum::Int(3)));
        assert_ne!(a.fingerprint(&pa), f.fingerprint(&pa));
        // Filter-level fingerprints ignore view and projection.
        assert_eq!(a.filter_fingerprint(), e.filter_fingerprint());
        assert_ne!(a.filter_fingerprint(), f.filter_fingerprint());
    }

    #[test]
    fn resolve_validates_columns() {
        let spec =
            SubscriptionSpec::on("v").with_filter(FeedFilter::cmp(9, CmpOp::Eq, Datum::Int(0)));
        assert!(matches!(
            spec.resolve(4),
            Err(FeedError::BadColumn { column: 9, .. })
        ));
        let spec = SubscriptionSpec::on("v").with_projection(vec![0, 4]);
        assert!(matches!(
            spec.resolve(4),
            Err(FeedError::BadColumn { column: 4, .. })
        ));
        assert_eq!(SubscriptionSpec::on("v").resolve(3).unwrap(), vec![0, 1, 2]);
    }
}
