//! Change-feed subscriptions over materialized outer-join views.
//!
//! Clients subscribe to a view with an optional filter (a conjunction over
//! the view's output columns) and column projection. Every committed
//! maintenance batch is translated — once per distinct `(filter,
//! projection)`, not once per subscriber — into net update sets delivered
//! in LSN order with resumable cursors:
//!
//! * **Dedup:** identical subscriptions share one evaluation and one
//!   `Arc<UpdateSet>` per commit, via a fingerprint trie (view → filter →
//!   projection) mirroring the batch planner's plan trie.
//! * **Cancellation:** a row inserted and deleted inside one batch nets to
//!   nothing; an UPDATE decomposes into delete/insert halves only when a
//!   projected column actually changed.
//! * **Catch-up:** a subscriber that parks and returns at an older LSN is
//!   caught up by one synthetic diff computed from PR-6 snapshot pins;
//!   past the snapshot floor it degrades to a full rebase.
//!
//! # Quick start
//!
//! ```
//! use ojv_core::fixtures;
//! use ojv_core::prelude::Database;
//! use ojv_feed::{Drained, FeedHub, SubscriberState, SubscriptionSpec};
//!
//! let mut catalog = fixtures::example1_catalog();
//! fixtures::populate_example1(&mut catalog, 10, 12);
//! let mut db = Database::new(catalog);
//! db.create_view(fixtures::oj_view_def()).unwrap();
//!
//! // Attach a hub and subscribe; the returned image is the view at the
//! // subscription's starting LSN.
//! let hub = FeedHub::new();
//! hub.attach(&mut db);
//! let (sub, image) = hub.subscribe(&SubscriptionSpec::on("oj_view")).unwrap();
//! let mut state = SubscriberState::new(&image);
//!
//! // Commit — maintenance runs, and the hub nets the view delta into
//! // update sets. Drain applies exactly the commits since the cursor.
//! db.insert("lineitem", vec![fixtures::lineitem_row(3, 9, 2, 4, 42.0)])
//!     .unwrap();
//! match sub.drain().unwrap() {
//!     Drained::Updates(sets) => {
//!         for set in sets {
//!             state.apply(&set);
//!         }
//!     }
//!     Drained::Rebase(image) => state.rebase(&image),
//! }
//! assert_eq!(state.len(), db.view("oj_view").unwrap().len());
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod filter;
pub mod hub;
mod trace;
pub mod update_set;

pub use error::{FeedError, Result};
pub use filter::{FeedAtom, FeedFilter, SubscriptionSpec};
pub use hub::{scan_state_bytes, FanoutBatch, FeedHub, FeedStats, Subscription};
pub use update_set::{Drained, Materialization, Resumed, SubscriberState, UpdateSet};

#[doc(hidden)]
pub use hub::test_panic;
