//! Happens-before trace shim (the same shape as `ojv-core`'s).
//!
//! With the `concheck` feature (or under `cfg(test)`), these forward to the
//! vector-clock race detector in `ojv_testkit::race`; otherwise they are
//! inlined no-ops, so the default build carries zero instrumentation cost.

#[cfg(any(test, feature = "concheck"))]
pub(crate) use ojv_testkit::race::{
    active, lock_acquired, lock_released, observe, on_read, on_write, publish, register_thread,
};

#[cfg(not(any(test, feature = "concheck")))]
mod noop {
    #[inline(always)]
    pub(crate) fn active() -> bool {
        false
    }
    #[inline(always)]
    pub(crate) fn on_read(_cell: &str) {}
    #[inline(always)]
    pub(crate) fn on_write(_cell: &str) {}
    #[inline(always)]
    pub(crate) fn publish(_chan: &str) {}
    #[inline(always)]
    pub(crate) fn observe(_chan: &str) {}
    #[inline(always)]
    pub(crate) fn register_thread(_name: &str) {}
    #[inline(always)]
    pub(crate) fn lock_acquired(_label: &str) {}
    #[inline(always)]
    pub(crate) fn lock_released(_label: &str) {}
}

#[cfg(not(any(test, feature = "concheck")))]
pub(crate) use noop::*;
