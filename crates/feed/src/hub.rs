//! The change-feed hub: subscription registry, per-commit netting, shared
//! fan-out, and LSN-ordered delivery.
//!
//! # Architecture
//!
//! The hub attaches to a [`Database`] as its [`CommitObserver`]. Every
//! committed batch arrives as the journaled `(view, Vec<ViewOp>)` pairs the
//! snapshot registry just published, tagged with the commit LSN — the feed
//! therefore sees exactly the deltas maintenance computed, in commit order,
//! and never re-derives them.
//!
//! Subscriptions dedup through a three-level trie mirroring the batch
//! planner's plan trie: **view → filter group → evaluation leaf**. All
//! subscriptions with the same filter share one predicate evaluation per
//! changed row; within a filter group, subscriptions with the same
//! projection share one [`UpdateSet`] per commit, delivered as `Arc` clones.
//! 100 000 subscribers over 250 distinct `(filter, projection)` specs cost
//! 250 evaluations per commit, not 100 000.
//!
//! Per commit the hub first **nets** each view's ops: ops are folded per
//! view key (last write wins), then compared against a shadow image of the
//! view, yielding `(pre, post)` pairs. A row inserted and deleted inside one
//! batch nets to nothing; an UPDATE decomposes into its delete/insert
//! halves only when a projected column actually changed. Netted events fan
//! out to filter groups on a bounded worker pool (the same shape as batched
//! maintenance's pool: bucketed jobs, `std::thread::scope`, per-job
//! `catch_unwind`). Workers touch no locks — a panic is caught at the job
//! boundary, sibling groups still publish, and the affected group's
//! subscribers lapse to a snapshot rebase.
//!
//! Delivery is pull-based: each evaluation leaf retains a bounded ring of
//! recent `Arc<UpdateSet>`s; a subscriber's [`Subscription::drain`] returns
//! the sets past its cursor. A cursor that falls behind the ring's floor
//! lapses and is rebased from a snapshot pin; [`FeedHub::resume`] catches a
//! returning subscriber up from any LSN the snapshot registry can still pin
//! (PR 6's version chains), as a single synthetic diff set.

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use ojv_core::prelude::{
    CommitObserver, CoreError, Database, DurableDatabase, FanoutStats, SnapshotRegistry,
    SnapshotView, Vfs, ViewOp,
};
use ojv_durability::Lsn;
use ojv_exec::filter_project_into;
use ojv_rel::{fx_map_with_capacity, key_of, Datum, FxHashMap, Row, RowBuf};

use crate::error::{FeedError, Result};
use crate::filter::{FeedFilter, SubscriptionSpec};
use crate::update_set::{Drained, Materialization, Resumed, SubscriberState, UpdateSet};

/// Default per-leaf ring capacity: how many non-empty update sets a
/// subscriber may lag behind before it lapses to a snapshot rebase.
const DEFAULT_RETAINED: usize = 64;

// ---------------------------------------------------------------------------
// Trie state
// ---------------------------------------------------------------------------

/// One subscription's registration: its leaf coordinates plus its delivery
/// cursor (sets with `lsn > cursor` are still owed to it).
#[derive(Debug, Clone, Copy)]
struct SubEntry {
    view_idx: usize,
    group_idx: usize,
    leaf_idx: usize,
    cursor: Lsn,
}

/// Leaf of the dedup trie: one `(filter, projection)` evaluation shared by
/// every subscriber with that fingerprint.
#[derive(Debug)]
struct EvalLeaf {
    /// Fingerprint of `(view, filter, resolved projection)`.
    fp: u64,
    /// Projected output mapped to wide-row column indexes.
    proj_global: Arc<[usize]>,
    /// Commit LSN the leaf (re-)joined at; sets at or before it are already
    /// reflected in its subscribers' initial images.
    born_lsn: Lsn,
    /// Oldest cursor the ring can still serve; a cursor below it lapses.
    floor_lsn: Lsn,
    /// Recent non-empty update sets, oldest first, shared with subscribers.
    ring: VecDeque<Arc<UpdateSet>>,
    subscribers: usize,
}

/// Mid level of the trie: all leaves sharing one filter, so the predicate
/// runs once per netted event for the whole group.
#[derive(Debug)]
struct FilterGroup {
    filter_fp: u64,
    filter: Arc<FeedFilter>,
    leaves: Vec<EvalLeaf>,
}

/// Root level: per-view state. `shadow` is a full image of the view kept in
/// step with commits, providing the pre-images [`ViewOp::Delete`] lacks
/// (it names only the view key) so deletes can be filtered too.
#[derive(Debug)]
struct ViewFeed {
    name: Arc<str>,
    key_cols: Arc<[usize]>,
    /// Output column `i` of the view lives at wide index `out_cols[i]`.
    out_cols: Arc<[usize]>,
    shadow: FxHashMap<Vec<Datum>, Row>,
    /// Commit LSN the shadow reflects; commits at or before it are skipped
    /// (the shadow was seeded from a snapshot that already includes them).
    shadow_lsn: Lsn,
    groups: Vec<FilterGroup>,
}

#[derive(Debug)]
struct HubInner {
    /// Highest commit LSN published through the hub.
    lsn: Lsn,
    registry: Option<SnapshotRegistry>,
    views: Vec<ViewFeed>,
    subs: FxHashMap<u64, SubEntry>,
    /// Retention pins left by [`Subscription::park`]: each holds the
    /// snapshot registry's version chains back to its LSN so the parked
    /// client can later [`FeedHub::resume`] with a catch-up diff instead of
    /// a full rebase. Released by the matching resume.
    parked: Vec<(Lsn, ojv_core::prelude::Snapshot)>,
    next_sub: u64,
    max_retained: usize,
    /// Last fan-out failure (a caught worker panic), kept for
    /// [`FeedHub::take_error`].
    last_error: Option<FeedError>,
    commits_seen: u64,
    last_fanout_nanos: u64,
    total_fanout_nanos: u64,
}

/// Aggregate hub counters (see [`FeedHub::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeedStats {
    /// Live subscriptions.
    pub subscribers: usize,
    /// Evaluation leaves with at least one subscriber — the number of
    /// per-commit evaluations actually performed. The dedup ratio is
    /// `subscribers / shared_evals`.
    pub shared_evals: usize,
    /// Filter groups with at least one live leaf — the number of predicate
    /// evaluations per netted event.
    pub filter_groups: usize,
    /// Views with feed state.
    pub views: usize,
    /// Update sets currently retained across all rings.
    pub retained_sets: usize,
    /// Commits fanned out since attach.
    pub commits_seen: u64,
    /// Wall-clock nanoseconds of the most recent fan-out (netting +
    /// evaluation + publication).
    pub last_fanout_nanos: u64,
    /// Total fan-out nanoseconds since attach.
    pub total_fanout_nanos: u64,
}

// ---------------------------------------------------------------------------
// Netting
// ---------------------------------------------------------------------------

/// One view key's net change in a commit: `pre` (row before, from the
/// shadow) and `post` (row after). `pre = None` → net insert; `post = None`
/// → net delete; both `Some` → update. Never both `None` — full
/// intra-batch cancellation is dropped during netting.
#[derive(Debug)]
struct NetEvent {
    key: Vec<Datum>,
    pre: Option<Row>,
    post: Option<Row>,
}

/// Fold a commit's ops per view key (last write wins), diff against the
/// shadow, and advance the shadow to the post-state. First-touch order is
/// preserved so output is deterministic.
fn net_events(
    ops: &[ViewOp],
    key_cols: &[usize],
    shadow: &mut FxHashMap<Vec<Datum>, Row>,
) -> Vec<NetEvent> {
    let mut order: Vec<Vec<Datum>> = Vec::new();
    let mut last: FxHashMap<Vec<Datum>, Option<Row>> = fx_map_with_capacity(ops.len());
    for op in ops {
        let (key, post) = match op {
            ViewOp::Insert(row) => (key_of(row, key_cols), Some(row.clone())),
            ViewOp::Delete(key) => (key.clone(), None),
        };
        if !last.contains_key(&key) {
            order.push(key.clone());
        }
        last.insert(key, post);
    }
    let mut events = Vec::with_capacity(order.len());
    for key in order {
        let post = last.remove(&key).expect("keyed in the fold above");
        let pre = match &post {
            Some(row) => shadow.insert(key.clone(), row.clone()),
            None => shadow.remove(&key),
        };
        if pre.is_none() && post.is_none() {
            // Inserted and deleted inside the same batch: nets to nothing.
            continue;
        }
        events.push(NetEvent { key, pre, post });
    }
    events
}

// ---------------------------------------------------------------------------
// Fan-out pool
// ---------------------------------------------------------------------------

/// One worker job: evaluate one filter group's netted events for all of its
/// live leaves. Self-contained (`Arc` shares of immutable state) so workers
/// never touch the hub lock.
struct Job {
    view: Arc<str>,
    view_idx: usize,
    group_idx: usize,
    key_width: usize,
    out_cols: Arc<[usize]>,
    filter: Arc<FeedFilter>,
    /// `(leaf index, projection)` of each live leaf.
    leaves: Vec<(usize, Arc<[usize]>)>,
    events: Arc<Vec<NetEvent>>,
}

struct JobResult {
    view_idx: usize,
    group_idx: usize,
    leaf_idxs: Vec<usize>,
    outcome: std::result::Result<Vec<(usize, UpdateSet)>, FeedError>,
}

/// Evaluate one group: the filter runs once per event; per live leaf, the
/// event contributes a delete, an insert, both (an UPDATE of a projected
/// column), or nothing (projected columns unchanged).
fn eval_group(job: &Job, lsn: Lsn) -> Vec<(usize, UpdateSet)> {
    test_panic::maybe_panic(&job.view);
    let mut sets: Vec<(usize, UpdateSet)> = job
        .leaves
        .iter()
        .map(|(li, proj)| (*li, UpdateSet::empty(lsn, job.key_width, proj.len())))
        .collect();
    for ev in job.events.iter() {
        let pre_m = ev
            .pre
            .as_deref()
            .is_some_and(|r| job.filter.matches_row(r, &job.out_cols));
        let post_m = ev
            .post
            .as_deref()
            .is_some_and(|r| job.filter.matches_row(r, &job.out_cols));
        if !pre_m && !post_m {
            continue;
        }
        for ((_, proj), (_, set)) in job.leaves.iter().zip(sets.iter_mut()) {
            match (pre_m, post_m) {
                (true, true) => {
                    let pre = ev.pre.as_deref().expect("pre matched");
                    let post = ev.post.as_deref().expect("post matched");
                    // UPDATE halves — emitted only if a projected column
                    // actually changed for this leaf.
                    if proj.iter().any(|&c| pre[c] != post[c]) {
                        set.deletes.push_row(&ev.key);
                        push_insert(set, &ev.key, post, proj);
                    }
                }
                (true, false) => set.deletes.push_row(&ev.key),
                (false, true) => {
                    push_insert(
                        set,
                        &ev.key,
                        ev.post.as_deref().expect("post matched"),
                        proj,
                    );
                }
                (false, false) => unreachable!("skipped above"),
            }
        }
    }
    sets
}

/// Append `[key | projected row]` without an intermediate allocation.
fn push_insert(set: &mut UpdateSet, key: &[Datum], row: &[Datum], proj: &[usize]) {
    let dst = set.inserts.push_null_row();
    for (slot, v) in dst[..key.len()].iter_mut().zip(key) {
        *slot = v.clone();
    }
    for (slot, &c) in dst[key.len()..].iter_mut().zip(proj.iter()) {
        *slot = row[c].clone();
    }
}

fn run_job(job: Job, lsn: Lsn) -> JobResult {
    let leaf_idxs: Vec<usize> = job.leaves.iter().map(|(li, _)| *li).collect();
    let (view_idx, group_idx) = (job.view_idx, job.group_idx);
    let view = Arc::clone(&job.view);
    let outcome = catch_unwind(AssertUnwindSafe(|| eval_group(&job, lsn))).map_err(|p| {
        FeedError::FanoutPanic {
            view: view.to_string(),
            detail: ojv_core::batch::panic_detail(p.as_ref()),
        }
    });
    JobResult {
        view_idx,
        group_idx,
        leaf_idxs,
        outcome,
    }
}

/// Run jobs on a bounded pool (same shape as batched maintenance's pool:
/// round-robin buckets, scoped threads, per-job `catch_unwind`). Workers
/// call only [`run_job`] — no locks are taken on worker threads.
fn run_jobs(jobs: Vec<Job>, lsn: Lsn, threads: usize) -> Vec<JobResult> {
    let p = threads.max(1).min(jobs.len().max(1));
    if p <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| run_job(j, lsn)).collect();
    }
    let mut buckets: Vec<Vec<Job>> = (0..p).map(|_| Vec::new()).collect();
    for (k, job) in jobs.into_iter().enumerate() {
        buckets[k % p].push(job);
    }
    crate::trace::publish("feed.fanout.spawn");
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .enumerate()
            .map(|(b, bucket)| {
                scope.spawn(move || {
                    if crate::trace::active() {
                        crate::trace::register_thread(&format!("feed-fanout-{b}"));
                    }
                    crate::trace::observe("feed.fanout.spawn");
                    let out: Vec<JobResult> = bucket.into_iter().map(|j| run_job(j, lsn)).collect();
                    crate::trace::publish("feed.fanout.join");
                    out
                })
            })
            .collect();
        let mut merged = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(results) => merged.extend(results),
                // Unreachable in practice (every job body is caught), but a
                // worker-thread panic must not poison the hub.
                Err(p) => merged.push(JobResult {
                    view_idx: usize::MAX,
                    group_idx: usize::MAX,
                    leaf_idxs: Vec::new(),
                    outcome: Err(FeedError::FanoutPanic {
                        view: "<fan-out worker>".to_string(),
                        detail: ojv_core::batch::panic_detail(p.as_ref()),
                    }),
                }),
            }
        }
        crate::trace::observe("feed.fanout.join");
        merged
    })
}

// ---------------------------------------------------------------------------
// Scans and diffs (catch-up, initial images)
// ---------------------------------------------------------------------------

/// Filtered, projected image of a snapshot view in `[key | proj]` layout.
/// Filtering happens on the stored wide rows — rejected rows are never
/// widened or copied (see [`filter_project_into`]).
fn scan_image(
    view: &SnapshotView,
    filter: &FeedFilter,
    proj_global: &[usize],
    lsn: Lsn,
) -> Materialization {
    let key_cols = view.key_cols();
    let mut cols = Vec::with_capacity(key_cols.len() + proj_global.len());
    cols.extend_from_slice(key_cols);
    cols.extend_from_slice(proj_global);
    let out_cols = view.projection();
    let mut rows = RowBuf::new(cols.len());
    filter_project_into(
        view.wide_rows().iter().map(|r| r.as_slice()),
        |r| filter.matches_row(r, out_cols),
        &cols,
        &mut rows,
    );
    Materialization {
        lsn,
        key_width: key_cols.len(),
        rows,
    }
}

/// Net diff between two images of the same subscription at different LSNs —
/// the catch-up set moving a subscriber state at `old.lsn` to `lsn`.
fn diff_images(old: &Materialization, new: &Materialization, lsn: Lsn) -> UpdateSet {
    let kw = new.key_width;
    let proj_width = new.rows.width() - kw;
    let mut set = UpdateSet::empty(lsn, kw, proj_width);
    let mut old_map: FxHashMap<&[Datum], &[Datum]> = fx_map_with_capacity(old.rows.len());
    for row in old.rows.iter() {
        old_map.insert(&row[..kw], row);
    }
    for row in new.rows.iter() {
        match old_map.remove(&row[..kw]) {
            Some(prev) if prev == row => {}
            Some(_) => {
                set.deletes.push_row(&row[..kw]);
                set.inserts.push_row(row);
            }
            None => set.inserts.push_row(row),
        }
    }
    let mut gone: Vec<&[Datum]> = old_map.into_keys().collect();
    gone.sort();
    for key in gone {
        set.deletes.push_row(key);
    }
    set
}

/// Canonical state bytes of a fresh filtered scan — the differential twin of
/// [`SubscriberState::state_bytes`]. Tests compare a drained subscriber
/// against this without evaluating predicates themselves.
pub fn scan_state_bytes(view: &SnapshotView, spec: &SubscriptionSpec) -> Result<Vec<u8>> {
    let out_cols = view.projection();
    let proj_out = spec.resolve(out_cols.len())?;
    let proj_global: Vec<usize> = proj_out.iter().map(|&i| out_cols[i]).collect();
    let image = scan_image(view, &spec.filter, &proj_global, 0);
    Ok(SubscriberState::new(&image).state_bytes())
}

// ---------------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------------

/// Shared handle to the change-feed hub. Cheap to clone; all clones address
/// the same state. Attach it to a [`Database`] (or
/// [`DurableDatabase`]) and it translates every commit into per-subscriber
/// update sets.
pub struct FeedHub {
    inner: Arc<Mutex<HubInner>>,
    threads: usize,
}

impl Clone for FeedHub {
    fn clone(&self) -> Self {
        FeedHub {
            inner: Arc::clone(&self.inner),
            threads: self.threads,
        }
    }
}

impl fmt::Debug for FeedHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately lock-free: Debug may run while the hub lock is held.
        f.debug_struct("FeedHub")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Default for FeedHub {
    fn default() -> Self {
        Self::new()
    }
}

/// Hub-lock guard with happens-before bookkeeping (the same pattern as the
/// snapshot registry's guard).
struct HubGuard<'a>(MutexGuard<'a, HubInner>);

impl Deref for HubGuard<'_> {
    type Target = HubInner;
    fn deref(&self) -> &HubInner {
        &self.0
    }
}

impl DerefMut for HubGuard<'_> {
    fn deref_mut(&mut self) -> &mut HubInner {
        &mut self.0
    }
}

impl Drop for HubGuard<'_> {
    fn drop(&mut self) {
        crate::trace::lock_released("feed.hub.inner");
    }
}

impl FeedHub {
    /// A hub that evaluates fan-out inline (one thread).
    pub fn new() -> Self {
        Self::with_threads(1)
    }

    /// A hub whose fan-out runs on up to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        FeedHub {
            inner: Arc::new(Mutex::new(HubInner {
                lsn: 0,
                registry: None,
                views: Vec::new(),
                subs: fx_map_with_capacity(0),
                parked: Vec::new(),
                next_sub: 1,
                max_retained: DEFAULT_RETAINED,
                last_error: None,
                commits_seen: 0,
                last_fanout_nanos: 0,
                total_fanout_nanos: 0,
            })),
            threads: threads.max(1),
        }
    }

    /// Cap each leaf's retained ring at `sets` update sets (≥ 1). A
    /// subscriber lagging further lapses to a snapshot rebase on its next
    /// drain.
    pub fn set_retention(&self, sets: usize) {
        self.lock().max_retained = sets.max(1);
    }

    fn lock(&self) -> HubGuard<'_> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        crate::trace::lock_acquired("feed.hub.inner");
        HubGuard(g)
    }

    /// Attach to a database: future commits flow into the hub. Replaces any
    /// previously attached observer.
    pub fn attach(&self, db: &mut Database) {
        {
            let mut g = self.lock();
            crate::trace::on_write("feed.hub.state");
            g.registry = Some(db.snapshots().clone());
            g.lsn = db.commit_lsn();
        }
        db.attach_commit_observer(Arc::new(self.clone()));
    }

    /// Attach to a durable database; cursors and catch-up LSNs are then WAL
    /// LSNs, valid across restarts of the process (state is rebuilt by
    /// re-attaching and letting subscribers [`FeedHub::resume`]).
    pub fn attach_durable<V: Vfs>(&self, db: &mut DurableDatabase<V>) {
        {
            let mut g = self.lock();
            crate::trace::on_write("feed.hub.state");
            g.registry = Some(db.snapshots().clone());
            g.lsn = db.database().commit_lsn();
        }
        db.attach_commit_observer(Arc::new(self.clone()));
    }

    /// Register a subscription. Returns the handle plus the initial filtered
    /// image of the view at the subscription's starting LSN; subsequent
    /// [`Subscription::drain`]s deliver exactly the commits after it.
    pub fn subscribe(&self, spec: &SubscriptionSpec) -> Result<(Subscription, Materialization)> {
        let mut g = self.lock();
        crate::trace::on_write("feed.hub.state");
        let registry = g.registry.clone().ok_or(FeedError::NotAttached)?;
        // Lock order is hub → registry, everywhere: commits release the
        // registry lock before the observer runs, so no inversion.
        let pin = registry.pin()?;
        let view = pin.view(&spec.view).ok_or_else(|| FeedError::UnknownView {
            view: spec.view.clone(),
        })?;
        let proj_out = spec.resolve(view.projection().len())?;
        let fp = spec.fingerprint(&proj_out);
        let view_idx = g.ensure_view(view, pin.lsn());
        let (group_idx, leaf_idx) = g.ensure_leaf(view_idx, spec, fp, &proj_out, pin.lsn());
        let leaf = &mut g.views[view_idx].groups[group_idx].leaves[leaf_idx];
        leaf.subscribers += 1;
        let proj_global = Arc::clone(&leaf.proj_global);
        let id = g.next_sub;
        g.next_sub += 1;
        g.subs.insert(
            id,
            SubEntry {
                view_idx,
                group_idx,
                leaf_idx,
                cursor: pin.lsn(),
            },
        );
        let image = scan_image(view, &spec.filter, &proj_global, pin.lsn());
        Ok((
            Subscription {
                hub: self.clone(),
                id,
                view: Arc::from(spec.view.as_str()),
            },
            image,
        ))
    }

    /// Re-register a subscription whose client last applied `from_lsn`:
    ///
    /// * the leaf's ring still covers `from_lsn` → [`Resumed::Stream`]
    ///   (keep local state, just drain);
    /// * the ring lapsed but the snapshot registry can still pin `from_lsn`
    ///   → [`Resumed::CatchUp`] (one synthetic diff set from `from_lsn` to
    ///   now);
    /// * `from_lsn` is below the snapshot floor → [`Resumed::Rebase`]
    ///   (fresh full image).
    pub fn resume(
        &self,
        spec: &SubscriptionSpec,
        from_lsn: Lsn,
    ) -> Result<(Subscription, Resumed)> {
        let mut g = self.lock();
        crate::trace::on_write("feed.hub.state");
        let registry = g.registry.clone().ok_or(FeedError::NotAttached)?;
        let pin = registry.pin()?;
        let view = pin.view(&spec.view).ok_or_else(|| FeedError::UnknownView {
            view: spec.view.clone(),
        })?;
        let proj_out = spec.resolve(view.projection().len())?;
        let fp = spec.fingerprint(&proj_out);
        let view_idx = g.ensure_view(view, pin.lsn());
        let (group_idx, leaf_idx) = g.ensure_leaf(view_idx, spec, fp, &proj_out, pin.lsn());
        let (floor, proj_global) = {
            let leaf = &g.views[view_idx].groups[group_idx].leaves[leaf_idx];
            (leaf.floor_lsn, Arc::clone(&leaf.proj_global))
        };
        let (resumed, cursor) = if from_lsn >= floor {
            (Resumed::Stream, from_lsn)
        } else {
            match registry.pin_at(from_lsn) {
                Ok(old_pin) => {
                    let old_view =
                        old_pin
                            .view(&spec.view)
                            .ok_or_else(|| FeedError::UnknownView {
                                view: spec.view.clone(),
                            })?;
                    let old = scan_image(old_view, &spec.filter, &proj_global, old_pin.lsn());
                    let new = scan_image(view, &spec.filter, &proj_global, pin.lsn());
                    let set = diff_images(&old, &new, pin.lsn());
                    (Resumed::CatchUp(Arc::new(set)), pin.lsn())
                }
                Err(CoreError::SnapshotUnavailable { .. }) => {
                    let image = scan_image(view, &spec.filter, &proj_global, pin.lsn());
                    (Resumed::Rebase(image), pin.lsn())
                }
                Err(e) => return Err(e.into()),
            }
        };
        // The client is back: its parked retention pin (if any) has done its
        // job and the registry may reclaim history behind the new cursor.
        if let Some(i) = g.parked.iter().position(|(l, _)| *l == from_lsn) {
            g.parked.swap_remove(i);
        }
        let leaf = &mut g.views[view_idx].groups[group_idx].leaves[leaf_idx];
        leaf.subscribers += 1;
        let id = g.next_sub;
        g.next_sub += 1;
        g.subs.insert(
            id,
            SubEntry {
                view_idx,
                group_idx,
                leaf_idx,
                cursor,
            },
        );
        Ok((
            Subscription {
                hub: self.clone(),
                id,
                view: Arc::from(spec.view.as_str()),
            },
            resumed,
        ))
    }

    /// Aggregate counters.
    pub fn stats(&self) -> FeedStats {
        let g = self.lock();
        crate::trace::on_read("feed.hub.state");
        let mut stats = FeedStats {
            subscribers: g.subs.len(),
            views: g.views.len(),
            commits_seen: g.commits_seen,
            last_fanout_nanos: g.last_fanout_nanos,
            total_fanout_nanos: g.total_fanout_nanos,
            ..FeedStats::default()
        };
        for vf in &g.views {
            for group in &vf.groups {
                let live = group.leaves.iter().filter(|l| l.subscribers > 0).count();
                if live > 0 {
                    stats.filter_groups += 1;
                }
                stats.shared_evals += live;
                stats.retained_sets += group.leaves.iter().map(|l| l.ring.len()).sum::<usize>();
            }
        }
        stats
    }

    /// Take (and clear) the last fan-out failure — a worker panic caught at
    /// the job boundary. The affected group's subscribers have lapsed and
    /// will rebase on their next drain.
    pub fn take_error(&self) -> Option<FeedError> {
        let mut g = self.lock();
        crate::trace::on_write("feed.hub.state");
        g.last_error.take()
    }

    /// First half of a fan-out: under the hub lock, net each view's ops
    /// against its shadow and assemble per-group jobs; then (lock released)
    /// evaluate them on the worker pool. Nothing is visible to subscribers
    /// until [`FeedHub::publish_fanout`]. Split out so tests can interleave
    /// subscriber operations between the two halves deterministically.
    pub fn begin_fanout(&self, lsn: Lsn, updates: &[(String, Vec<ViewOp>)]) -> FanoutBatch {
        let started = Instant::now();
        let jobs = {
            let mut g = self.lock();
            crate::trace::on_write("feed.hub.state");
            let mut jobs = Vec::new();
            for (name, ops) in updates {
                if ops.is_empty() {
                    continue;
                }
                let Some(view_idx) = g
                    .views
                    .iter()
                    .position(|v| v.name.as_ref() == name.as_str())
                else {
                    continue; // no subscribers have ever touched this view
                };
                let vf = &mut g.views[view_idx];
                if lsn <= vf.shadow_lsn {
                    continue; // shadow was seeded from a snapshot including this commit
                }
                let key_cols = Arc::clone(&vf.key_cols);
                let events = Arc::new(net_events(ops, &key_cols, &mut vf.shadow));
                vf.shadow_lsn = lsn;
                if events.is_empty() {
                    continue; // the whole batch cancelled out
                }
                for (gi, group) in vf.groups.iter().enumerate() {
                    let live: Vec<(usize, Arc<[usize]>)> = group
                        .leaves
                        .iter()
                        .enumerate()
                        .filter(|(_, l)| l.subscribers > 0)
                        .map(|(li, l)| (li, Arc::clone(&l.proj_global)))
                        .collect();
                    if live.is_empty() {
                        continue;
                    }
                    jobs.push(Job {
                        view: Arc::clone(&vf.name),
                        view_idx,
                        group_idx: gi,
                        key_width: vf.key_cols.len(),
                        out_cols: Arc::clone(&vf.out_cols),
                        filter: Arc::clone(&group.filter),
                        leaves: live,
                        events: Arc::clone(&events),
                    });
                }
            }
            jobs
        };
        let results = run_jobs(jobs, lsn, self.threads);
        FanoutBatch {
            lsn,
            started,
            results,
        }
    }

    /// Second half of a fan-out: append the evaluated sets to their leaves'
    /// rings (atomically, under the hub lock) and advance the hub LSN. A
    /// leaf that (re-)subscribed at or after this LSN is skipped — its
    /// initial image already includes the commit. A failed job fences its
    /// leaves instead: their subscribers lapse and rebase.
    pub fn publish_fanout(&self, batch: FanoutBatch) {
        let elapsed = batch.started.elapsed().as_nanos() as u64; // lint:allow(cast) — ~584 years of headroom
        let mut g = self.lock();
        crate::trace::on_write("feed.hub.state");
        let cap = g.max_retained;
        for res in batch.results {
            if res.view_idx == usize::MAX {
                // Pool-level failure with no leaf attribution.
                if let Err(e) = res.outcome {
                    g.last_error = Some(e);
                }
                continue;
            }
            match res.outcome {
                Ok(sets) => {
                    for (li, set) in sets {
                        if set.is_empty() {
                            continue;
                        }
                        let leaf = &mut g.views[res.view_idx].groups[res.group_idx].leaves[li];
                        if set.lsn <= leaf.born_lsn || leaf.subscribers == 0 {
                            continue;
                        }
                        leaf.ring.push_back(Arc::new(set));
                        while leaf.ring.len() > cap {
                            if let Some(old) = leaf.ring.pop_front() {
                                leaf.floor_lsn = old.lsn;
                            }
                        }
                    }
                }
                Err(e) => {
                    for &li in &res.leaf_idxs {
                        let leaf = &mut g.views[res.view_idx].groups[res.group_idx].leaves[li];
                        leaf.ring.clear();
                        leaf.floor_lsn = batch.lsn;
                    }
                    g.last_error = Some(e);
                }
            }
        }
        if batch.lsn > g.lsn {
            g.lsn = batch.lsn;
        }
        g.commits_seen += 1;
        g.last_fanout_nanos = elapsed;
        g.total_fanout_nanos += elapsed;
    }

    fn drain_sub(&self, id: u64) -> Result<Drained> {
        let mut g = self.lock();
        crate::trace::on_write("feed.hub.state");
        let entry = g
            .subs
            .get(&id)
            .copied()
            .ok_or(FeedError::UnknownSubscriber { id })?;
        let hub_lsn = g.lsn;
        let leaf = &g.views[entry.view_idx].groups[entry.group_idx].leaves[entry.leaf_idx];
        if entry.cursor < leaf.floor_lsn {
            // Lapsed past the ring (or fenced by a fan-out failure):
            // replace the subscriber's state from a fresh pin.
            let registry = g.registry.clone().ok_or(FeedError::NotAttached)?;
            let pin = registry.pin()?;
            let vf = &g.views[entry.view_idx];
            let view = pin.view(&vf.name).ok_or_else(|| FeedError::UnknownView {
                view: vf.name.to_string(),
            })?;
            let group = &vf.groups[entry.group_idx];
            let filter = Arc::clone(&group.filter);
            let proj_global = Arc::clone(&group.leaves[entry.leaf_idx].proj_global);
            let image = scan_image(view, &filter, &proj_global, pin.lsn());
            let cursor = pin.lsn();
            g.subs.get_mut(&id).expect("present above").cursor = cursor;
            return Ok(Drained::Rebase(image));
        }
        let sets: Vec<Arc<UpdateSet>> = leaf
            .ring
            .iter()
            .filter(|s| s.lsn > entry.cursor)
            .cloned()
            .collect();
        let cursor = hub_lsn.max(entry.cursor);
        g.subs.get_mut(&id).expect("present above").cursor = cursor;
        Ok(Drained::Updates(sets))
    }

    fn cursor_of(&self, id: u64) -> Result<Lsn> {
        let g = self.lock();
        crate::trace::on_read("feed.hub.state");
        g.subs
            .get(&id)
            .map(|e| e.cursor)
            .ok_or(FeedError::UnknownSubscriber { id })
    }

    fn park_id(&self, id: u64) -> Result<Lsn> {
        let mut g = self.lock();
        crate::trace::on_write("feed.hub.state");
        let cursor = g
            .subs
            .get(&id)
            .map(|e| e.cursor)
            .ok_or(FeedError::UnknownSubscriber { id })?;
        let registry = g.registry.clone().ok_or(FeedError::NotAttached)?;
        // Pinning the cursor keeps every later version materializable, so a
        // future resume(spec, cursor) is guaranteed a catch-up diff rather
        // than a rebase (hub → registry lock order, as everywhere).
        let pin = registry.pin_at(cursor)?;
        g.parked.push((cursor, pin));
        Ok(cursor)
    }

    fn unsubscribe_id(&self, id: u64) -> Result<()> {
        let mut g = self.lock();
        crate::trace::on_write("feed.hub.state");
        let entry = g
            .subs
            .remove(&id)
            .ok_or(FeedError::UnknownSubscriber { id })?;
        let leaf = &mut g.views[entry.view_idx].groups[entry.group_idx].leaves[entry.leaf_idx];
        leaf.subscribers -= 1;
        if leaf.subscribers == 0 {
            // Keep the leaf (stable indices, cheap re-subscribe) but drop
            // its retained sets: nobody can drain them any more.
            leaf.ring.clear();
        }
        Ok(())
    }
}

impl HubInner {
    /// Find or create the per-view feed state, seeding the shadow from the
    /// pinned image (which reflects everything up to `lsn`).
    fn ensure_view(&mut self, view: &SnapshotView, lsn: Lsn) -> usize {
        if let Some(i) = self
            .views
            .iter()
            .position(|v| v.name.as_ref() == view.name())
        {
            return i;
        }
        let key_cols: Arc<[usize]> = view.key_cols().into();
        let mut shadow = fx_map_with_capacity(view.len());
        for row in view.wide_rows() {
            shadow.insert(key_of(row, &key_cols), row.clone());
        }
        self.views.push(ViewFeed {
            name: Arc::from(view.name()),
            key_cols,
            out_cols: view.projection().into(),
            shadow,
            shadow_lsn: lsn,
            groups: Vec::new(),
        });
        self.views.len() - 1
    }

    /// Find or create the `(filter, projection)` leaf; a leaf revived from
    /// zero subscribers restarts at `lsn` (its stale ring is useless).
    fn ensure_leaf(
        &mut self,
        view_idx: usize,
        spec: &SubscriptionSpec,
        fp: u64,
        proj_out: &[usize],
        lsn: Lsn,
    ) -> (usize, usize) {
        let filter_fp = spec.filter_fingerprint();
        let vf = &mut self.views[view_idx];
        let out_cols = Arc::clone(&vf.out_cols);
        let gi = match vf.groups.iter().position(|g| g.filter_fp == filter_fp) {
            Some(i) => i,
            None => {
                vf.groups.push(FilterGroup {
                    filter_fp,
                    filter: Arc::new(spec.filter.clone()),
                    leaves: Vec::new(),
                });
                vf.groups.len() - 1
            }
        };
        let group = &mut vf.groups[gi];
        let li = match group.leaves.iter().position(|l| l.fp == fp) {
            Some(i) => {
                let leaf = &mut group.leaves[i];
                if leaf.subscribers == 0 {
                    leaf.born_lsn = lsn;
                    leaf.floor_lsn = lsn;
                    leaf.ring.clear();
                }
                i
            }
            None => {
                group.leaves.push(EvalLeaf {
                    fp,
                    proj_global: proj_out.iter().map(|&i| out_cols[i]).collect(),
                    born_lsn: lsn,
                    floor_lsn: lsn,
                    ring: VecDeque::new(),
                    subscribers: 0,
                });
                group.leaves.len() - 1
            }
        };
        (gi, li)
    }
}

impl CommitObserver for FeedHub {
    fn on_commit(&self, lsn: Lsn, updates: &[(String, Vec<ViewOp>)]) {
        let batch = self.begin_fanout(lsn, updates);
        self.publish_fanout(batch);
    }

    fn fanout_stats(&self) -> Option<FanoutStats> {
        let stats = self.stats();
        Some(FanoutStats {
            subscribers: stats.subscribers,
            shared_evals: stats.shared_evals,
        })
    }
}

/// An evaluated-but-unpublished fan-out (see [`FeedHub::begin_fanout`]).
#[must_use = "publish_fanout(batch) makes the fan-out visible to subscribers"]
pub struct FanoutBatch {
    lsn: Lsn,
    started: Instant,
    results: Vec<JobResult>,
}

impl FanoutBatch {
    /// Commit LSN this batch carries.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }
}

impl fmt::Debug for FanoutBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutBatch")
            .field("lsn", &self.lsn)
            .field("jobs", &self.results.len())
            .finish_non_exhaustive()
    }
}

/// A live subscription handle. Dropping it unsubscribes.
#[derive(Debug)]
pub struct Subscription {
    hub: FeedHub,
    id: u64,
    view: Arc<str>,
}

impl Subscription {
    /// Stable subscriber id within the hub.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// View this subscription watches.
    pub fn view(&self) -> &str {
        &self.view
    }

    /// The LSN the hub believes this subscriber has applied (advances on
    /// every drain). Persist it to [`FeedHub::resume`] later.
    pub fn cursor(&self) -> Result<Lsn> {
        self.hub.cursor_of(self.id)
    }

    /// Pull everything committed since the last drain, in LSN order.
    pub fn drain(&self) -> Result<Drained> {
        self.hub.drain_sub(self.id)
    }

    /// Explicitly unsubscribe (equivalent to dropping the handle).
    pub fn unsubscribe(self) {}

    /// Gracefully disconnect: unsubscribe, but leave a retention pin at the
    /// current cursor so the snapshot registry keeps every later version
    /// alive. Returns the cursor to persist; a later
    /// [`FeedHub::resume`]`(spec, cursor)` is then guaranteed a catch-up
    /// diff (never a full rebase) and releases the pin. An abrupt `drop`
    /// leaves no pin — resuming still works while the leaf's ring covers
    /// the cursor, and degrades to a rebase beyond that.
    pub fn park(self) -> Result<Lsn> {
        self.hub.park_id(self.id)
        // `self` drops here, unsubscribing.
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let _ = self.hub.unsubscribe_id(self.id);
    }
}

/// Deterministic panic injection for exercising the fan-out pool's
/// `catch_unwind` boundary from integration tests. Mirrors
/// `ojv_core::batch`'s test hook, but always compiled (hidden) so external
/// tests can reach it.
#[doc(hidden)]
pub mod test_panic {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ARMED: AtomicBool = AtomicBool::new(false);

    /// Fan-out jobs for this view panic while armed.
    pub const PANIC_VIEW: &str = "panic_feed";

    pub fn arm() {
        ARMED.store(true, Ordering::SeqCst);
    }

    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
    }

    pub(crate) fn maybe_panic(view: &str) {
        if view == PANIC_VIEW && ARMED.swap(false, Ordering::SeqCst) {
            panic!("armed feed fan-out panic for view {view}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::CmpOp;
    use ojv_core::fixtures;
    use ojv_core::prelude::Database;

    fn db() -> Database {
        let mut catalog = fixtures::example1_catalog();
        fixtures::populate_example1(&mut catalog, 10, 12);
        let mut db = Database::new(catalog);
        db.create_view(fixtures::oj_view_def()).unwrap();
        db
    }

    /// Subscription over all rows whose part side is present
    /// (`p_partkey IS NOT NULL`), projecting part key and name.
    fn part_spec() -> SubscriptionSpec {
        SubscriptionSpec::on("oj_view")
            .with_filter(FeedFilter::new(vec![crate::filter::FeedAtom::IsNotNull {
                col: 0,
            }]))
            .with_projection(vec![0, 1])
    }

    fn apply_all(state: &mut SubscriberState, drained: Drained) {
        match drained {
            Drained::Updates(sets) => {
                for set in sets {
                    state.apply(&set);
                }
            }
            Drained::Rebase(image) => state.rebase(&image),
        }
    }

    /// The differential harness: after every commit, a drained subscriber
    /// must byte-match a fresh filtered scan of the current snapshot.
    fn assert_converged(db: &Database, spec: &SubscriptionSpec, state: &SubscriberState) {
        let pin = db.snapshots().pin().unwrap();
        let view = pin.view(&spec.view).unwrap();
        let want = scan_state_bytes(view, spec).unwrap();
        assert_eq!(
            state.state_bytes(),
            want,
            "subscriber state diverged from the snapshot scan"
        );
    }

    #[test]
    fn subscribe_stream_converges_with_snapshot_scans() {
        let mut db = db();
        let hub = FeedHub::new();
        hub.attach(&mut db);
        let spec = part_spec();
        let (sub, image) = hub.subscribe(&spec).unwrap();
        let mut state = SubscriberState::new(&image);
        assert_converged(&db, &spec, &state);

        // Insert: one new null-extended part row.
        db.insert("part", vec![fixtures::part_row(100, "new", 9.0)])
            .unwrap();
        apply_all(&mut state, sub.drain().unwrap());
        assert_converged(&db, &spec, &state);

        // Lineitem insert joins an existing part: the view rewrites rows.
        db.insert("lineitem", vec![fixtures::lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        apply_all(&mut state, sub.drain().unwrap());
        assert_converged(&db, &spec, &state);

        // Delete the part again.
        db.delete("part", &[vec![Datum::Int(100)]]).unwrap();
        apply_all(&mut state, sub.drain().unwrap());
        assert_converged(&db, &spec, &state);

        // Empty drain afterwards — nothing new, cursor is at the tip.
        match sub.drain().unwrap() {
            Drained::Updates(sets) => assert!(sets.is_empty()),
            other => panic!("expected empty Updates, got {other:?}"),
        }
    }

    #[test]
    fn identical_specs_share_one_evaluation() {
        let mut db = db();
        let hub = FeedHub::new();
        hub.attach(&mut db);
        let spec = part_spec();
        let subs: Vec<_> = (0..10).map(|_| hub.subscribe(&spec).unwrap()).collect();
        // A different projection of the same filter adds a leaf, not a group.
        let other = SubscriptionSpec::on("oj_view")
            .with_filter(spec.filter.clone())
            .with_projection(vec![2]);
        let (_other_sub, _img) = hub.subscribe(&other).unwrap();
        let stats = hub.stats();
        assert_eq!(stats.subscribers, 11);
        assert_eq!(stats.shared_evals, 2);
        assert_eq!(stats.filter_groups, 1);

        db.insert("part", vec![fixtures::part_row(200, "shared", 1.0)])
            .unwrap();
        // All ten identical subscribers drain clones of the same set.
        let mut first: Option<Arc<UpdateSet>> = None;
        for (sub, _) in &subs {
            match sub.drain().unwrap() {
                Drained::Updates(sets) => {
                    assert_eq!(sets.len(), 1);
                    if let Some(prev) = &first {
                        assert!(Arc::ptr_eq(prev, &sets[0]), "sets must be shared");
                    }
                    first = Some(Arc::clone(&sets[0]));
                }
                other => panic!("expected Updates, got {other:?}"),
            }
        }
    }

    #[test]
    fn unsubscribe_releases_leaves() {
        let mut db = db();
        let hub = FeedHub::new();
        hub.attach(&mut db);
        let (sub_a, _) = hub.subscribe(&part_spec()).unwrap();
        let (sub_b, _) = hub.subscribe(&part_spec()).unwrap();
        assert_eq!(hub.stats().subscribers, 2);
        assert_eq!(hub.stats().shared_evals, 1);
        drop(sub_a);
        assert_eq!(hub.stats().subscribers, 1);
        assert_eq!(hub.stats().shared_evals, 1);
        sub_b.unsubscribe();
        let stats = hub.stats();
        assert_eq!(stats.subscribers, 0);
        assert_eq!(stats.shared_evals, 0);
        assert_eq!(stats.retained_sets, 0);
        // With no subscribers the commit is netted (shadow advances) but no
        // sets are evaluated or retained.
        db.insert("part", vec![fixtures::part_row(300, "idle", 1.0)])
            .unwrap();
        assert_eq!(hub.stats().retained_sets, 0);
    }

    #[test]
    fn lagging_subscriber_lapses_and_rebases() {
        let mut db = db();
        let hub = FeedHub::new();
        hub.set_retention(2);
        hub.attach(&mut db);
        let spec = part_spec();
        let (sub, image) = hub.subscribe(&spec).unwrap();
        let mut state = SubscriberState::new(&image);
        // Four commits against a retention of two: the ring floor moves past
        // the subscriber's cursor.
        for i in 0..4 {
            db.insert("part", vec![fixtures::part_row(400 + i, "lag", 1.0)])
                .unwrap();
        }
        match sub.drain().unwrap() {
            Drained::Rebase(img) => state.rebase(&img),
            other => panic!("expected Rebase, got {other:?}"),
        }
        assert_converged(&db, &spec, &state);
        // Once rebased, streaming resumes normally.
        db.insert("part", vec![fixtures::part_row(500, "back", 1.0)])
            .unwrap();
        apply_all(&mut state, sub.drain().unwrap());
        assert_converged(&db, &spec, &state);
    }

    #[test]
    fn park_then_resume_catches_up_from_a_pinned_lsn() {
        let mut db = db();
        let hub = FeedHub::new();
        hub.attach(&mut db);
        let spec = part_spec();
        let (sub, image) = hub.subscribe(&spec).unwrap();
        let mut state = SubscriberState::new(&image);
        db.insert("part", vec![fixtures::part_row(600, "r1", 1.0)])
            .unwrap();
        apply_all(&mut state, sub.drain().unwrap());
        // Graceful disconnect: unsubscribes but pins the cursor so the
        // registry retains history across the gap.
        let cursor = sub.park().unwrap();

        // Commits while disconnected — including a delete of a row the
        // client still holds, which the catch-up diff must retract.
        db.insert("part", vec![fixtures::part_row(601, "r2", 1.0)])
            .unwrap();
        db.delete("part", &[vec![Datum::Int(600)]]).unwrap();

        let (sub2, resumed) = hub.resume(&spec, cursor).unwrap();
        match resumed {
            Resumed::CatchUp(set) => state.apply(&set),
            other => panic!("expected CatchUp, got {other:?}"),
        }
        assert_converged(&db, &spec, &state);

        // The resume released the parked pin: with no other pins the next
        // commit rebuilds no history, so resuming from `cursor` again can
        // no longer catch up and degrades to a rebase.
        db.insert("part", vec![fixtures::part_row(602, "r3", 1.0)])
            .unwrap();
        apply_all(&mut state, sub2.drain().unwrap());
        assert_converged(&db, &spec, &state);
        let (sub3, resumed) = hub.resume(&spec, cursor).unwrap();
        match resumed {
            Resumed::Rebase(img) => {
                let fresh = SubscriberState::new(&img);
                assert_converged(&db, &spec, &fresh);
            }
            other => panic!("expected Rebase after the pin was released, got {other:?}"),
        }
        drop(sub3);

        // An abrupt drop (no park) followed by more commits: the dead
        // leaf's ring is cleared, nothing pins history → rebase.
        drop(sub2);
        db.insert("part", vec![fixtures::part_row(603, "r4", 1.0)])
            .unwrap();
        let (_sub4, resumed) = hub.resume(&spec, cursor).unwrap();
        assert!(
            matches!(resumed, Resumed::Rebase(_)),
            "unparked resume across reclaimed history must rebase"
        );
    }

    #[test]
    fn update_decomposition_nets_to_halves() {
        let mut db = db();
        let hub = FeedHub::new();
        hub.attach(&mut db);
        // Project the lineitem price (output column 9) so updates to it are
        // visible.
        let spec = SubscriptionSpec::on("oj_view")
            .with_filter(FeedFilter::new(vec![crate::filter::FeedAtom::IsNotNull {
                col: 5,
            }]))
            .with_projection(vec![0, 9]);
        let (sub, image) = hub.subscribe(&spec).unwrap();
        let mut state = SubscriberState::new(&image);
        // UPDATE lineitem (1,1)'s price: decomposes into delete+insert per
        // affected view row; the feed nets each row to its two halves.
        db.update(
            "lineitem",
            &[vec![Datum::Int(1), Datum::Int(1)]],
            vec![fixtures::lineitem_row(1, 1, 2, 5, 999.0)],
        )
        .unwrap();
        match sub.drain().unwrap() {
            Drained::Updates(sets) => {
                // The decomposition may arrive as one netted set or as its
                // two single-sided halves, depending on how the policy
                // batches the rounds — but both halves must be present.
                assert!(!sets.is_empty());
                let (ins, del) = sets
                    .iter()
                    .fold((0, 0), |(i, d), s| (i + s.counts().0, d + s.counts().1));
                assert!(ins > 0 && del > 0, "update must produce both halves");
                for set in &sets {
                    state.apply(set);
                }
            }
            other => panic!("expected Updates, got {other:?}"),
        }
        assert_converged(&db, &spec, &state);

        // An UPDATE that leaves the projected columns untouched nets to
        // nothing for this leaf (part name, output column 1, does not
        // change when a lineitem price does).
        let spec_name = SubscriptionSpec::on("oj_view")
            .with_filter(FeedFilter::new(vec![crate::filter::FeedAtom::IsNotNull {
                col: 5,
            }]))
            .with_projection(vec![0, 1]);
        let (sub_name, image) = hub.subscribe(&spec_name).unwrap();
        let name_state = SubscriberState::new(&image);
        db.update(
            "lineitem",
            &[vec![Datum::Int(1), Datum::Int(1)]],
            vec![fixtures::lineitem_row(1, 1, 2, 5, 123.0)],
        )
        .unwrap();
        let before = name_state.state_bytes();
        let mut name_state = name_state;
        match sub_name.drain().unwrap() {
            Drained::Updates(sets) => {
                // The decomposition's two commits are netted independently
                // (delivery is per-commit, in LSN order), so the leaf may
                // see the delete and re-insert as separate sets — but
                // applying them must net to a no-op for a projection the
                // update didn't touch. A same-commit delete+insert would
                // have been cancelled outright during netting.
                for set in &sets {
                    name_state.apply(set);
                }
                assert_eq!(
                    name_state.state_bytes(),
                    before,
                    "price change must net to nothing for a name projection"
                );
            }
            other => panic!("expected Updates, got {other:?}"),
        }
        assert_converged(&db, &spec_name, &name_state);
        // The price projection does see it.
        apply_all(&mut state, sub.drain().unwrap());
        assert_converged(&db, &spec, &state);
    }

    #[test]
    fn filtered_subscriber_sees_rows_enter_and_leave_the_filter() {
        let mut db = db();
        let hub = FeedHub::new();
        hub.attach(&mut db);
        // Only expensive lineitems (output column 9 = l_extendedprice; the
        // fixture's prices all stay below 500).
        let spec = SubscriptionSpec::on("oj_view")
            .with_filter(FeedFilter::cmp(9, CmpOp::Gt, Datum::Float(500.0)))
            .with_projection(vec![0, 9]);
        let (sub, image) = hub.subscribe(&spec).unwrap();
        let mut state = SubscriberState::new(&image);
        assert!(state.is_empty(), "no fixture lineitem costs more than 500");

        // Enters the filter.
        db.update(
            "lineitem",
            &[vec![Datum::Int(1), Datum::Int(1)]],
            vec![fixtures::lineitem_row(1, 1, 2, 5, 700.0)],
        )
        .unwrap();
        apply_all(&mut state, sub.drain().unwrap());
        assert_converged(&db, &spec, &state);
        assert!(!state.is_empty());

        // Leaves the filter: delivered as a delete, not silently dropped.
        db.update(
            "lineitem",
            &[vec![Datum::Int(1), Datum::Int(1)]],
            vec![fixtures::lineitem_row(1, 1, 2, 5, 10.0)],
        )
        .unwrap();
        apply_all(&mut state, sub.drain().unwrap());
        assert_converged(&db, &spec, &state);
        assert!(state.is_empty());
    }

    #[test]
    fn fanout_panic_is_contained_and_subscriber_rebases() {
        let mut db = db();
        db.create_view(fixtures::oj_view_variant(test_panic::PANIC_VIEW, 1_000))
            .unwrap();
        let hub = FeedHub::new();
        hub.attach(&mut db);
        let panicking = SubscriptionSpec::on(test_panic::PANIC_VIEW);
        let healthy = part_spec();
        let (sub_p, image_p) = hub.subscribe(&panicking).unwrap();
        let (sub_h, image_h) = hub.subscribe(&healthy).unwrap();
        let mut state_p = SubscriberState::new(&image_p);
        let mut state_h = SubscriberState::new(&image_h);

        test_panic::arm();
        db.insert("part", vec![fixtures::part_row(700, "boom", 1.0)])
            .unwrap();
        test_panic::disarm();

        // The failure is surfaced, not swallowed; the healthy view's
        // subscriber is unaffected.
        match hub.take_error() {
            Some(FeedError::FanoutPanic { view, .. }) => {
                assert_eq!(view, test_panic::PANIC_VIEW);
            }
            other => panic!("expected FanoutPanic, got {other:?}"),
        }
        apply_all(&mut state_h, sub_h.drain().unwrap());
        assert_converged(&db, &healthy, &state_h);

        // The panicked group's subscriber lapses and self-heals via rebase.
        match sub_p.drain().unwrap() {
            Drained::Rebase(img) => state_p.rebase(&img),
            other => panic!("expected Rebase after a fan-out panic, got {other:?}"),
        }
        assert_converged(&db, &panicking, &state_p);

        // Subsequent commits stream normally again.
        db.insert("part", vec![fixtures::part_row(701, "calm", 1.0)])
            .unwrap();
        apply_all(&mut state_p, sub_p.drain().unwrap());
        assert_converged(&db, &panicking, &state_p);
    }

    #[test]
    fn intra_batch_insert_delete_cancels() {
        // Drive the netting directly: an op stream that inserts then deletes
        // the same key inside one commit must net to nothing.
        let key_cols = [0usize];
        let mut shadow: FxHashMap<Vec<Datum>, Row> = fx_map_with_capacity(0);
        let row = vec![Datum::Int(1), Datum::str("x")];
        let ops = vec![
            ViewOp::Insert(row.clone()),
            ViewOp::Delete(vec![Datum::Int(1)]),
        ];
        let events = net_events(&ops, &key_cols, &mut shadow);
        assert!(events.is_empty(), "insert+delete must cancel");
        assert!(shadow.is_empty());

        // Delete-then-reinsert of an existing row with the same value nets
        // to an update event whose pre == post (workers then drop it when no
        // projected column changed).
        shadow.insert(vec![Datum::Int(2)], vec![Datum::Int(2), Datum::str("y")]);
        let ops = vec![
            ViewOp::Delete(vec![Datum::Int(2)]),
            ViewOp::Insert(vec![Datum::Int(2), Datum::str("y")]),
        ];
        let events = net_events(&ops, &key_cols, &mut shadow);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].pre, events[0].post);
    }

    #[test]
    fn multithreaded_fanout_matches_inline() {
        let mut db1 = db();
        let mut db2 = db();
        let inline = FeedHub::new();
        let pooled = FeedHub::with_threads(4);
        inline.attach(&mut db1);
        pooled.attach(&mut db2);
        // Several distinct filter groups so the pool actually buckets.
        let specs: Vec<SubscriptionSpec> = (0..6)
            .map(|i| {
                SubscriptionSpec::on("oj_view")
                    .with_filter(FeedFilter::cmp(0, CmpOp::Gt, Datum::Int(i)))
                    .with_projection(vec![0, 1, 2])
            })
            .collect();
        let subs1: Vec<_> = specs.iter().map(|s| inline.subscribe(s).unwrap()).collect();
        let subs2: Vec<_> = specs.iter().map(|s| pooled.subscribe(s).unwrap()).collect();
        for i in 0..3 {
            db1.insert("part", vec![fixtures::part_row(800 + i, "mt", 1.0)])
                .unwrap();
            db2.insert("part", vec![fixtures::part_row(800 + i, "mt", 1.0)])
                .unwrap();
        }
        for (spec, ((s1, im1), (s2, im2))) in specs.iter().zip(subs1.iter().zip(subs2.iter())) {
            let mut st1 = SubscriberState::new(im1);
            let mut st2 = SubscriberState::new(im2);
            apply_all(&mut st1, s1.drain().unwrap());
            apply_all(&mut st2, s2.drain().unwrap());
            assert_eq!(
                st1.state_bytes(),
                st2.state_bytes(),
                "pooled fan-out diverged for {spec:?}"
            );
            assert_converged(&db1, spec, &st1);
        }
    }
}
