//! What subscribers receive: net update sets, catch-up materializations,
//! and a reference client-side state for applying them.
//!
//! Rows travel in the flat `[view key | projected output]` layout inside a
//! [`RowBuf`], one `Arc<UpdateSet>` per commit per evaluation group — every
//! subscriber of a group shares the same allocation, exactly like the
//! `shared_with` rows of batched maintenance.

use std::sync::Arc;

use ojv_durability::Lsn;
use ojv_rel::{fx_map_with_capacity, put_row, put_u64, Datum, FxHashMap, Row, RowBuf};

/// Net changes one commit produced for one evaluation group, in LSN order.
///
/// Intra-batch cancellation has already been applied: a row inserted and
/// deleted inside the same batch appears in neither part, and an UPDATE
/// whose projected columns are unchanged vanishes entirely. A key may
/// appear in both parts (`deletes` then `inserts`) — that is an UPDATE of a
/// projected column, decomposed into its two halves. Apply `deletes` before
/// `inserts`.
#[derive(Debug, Clone)]
pub struct UpdateSet {
    /// Commit this set corresponds to.
    pub lsn: Lsn,
    /// Leading columns of every `inserts` row (and the whole `deletes` row)
    /// that form the view key.
    pub key_width: usize,
    /// Net-inserted rows: `[view key | projected output]`.
    pub inserts: RowBuf,
    /// Net-deleted view keys.
    pub deletes: RowBuf,
}

impl UpdateSet {
    pub(crate) fn empty(lsn: Lsn, key_width: usize, proj_width: usize) -> Self {
        UpdateSet {
            lsn,
            key_width,
            inserts: RowBuf::new(key_width + proj_width),
            deletes: RowBuf::new(key_width),
        }
    }

    /// No net effect for this group at this commit.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// `(inserted rows, deleted keys)`.
    pub fn counts(&self) -> (usize, usize) {
        (self.inserts.len(), self.deletes.len())
    }
}

/// A full filtered/projected image of the view at one LSN, produced from a
/// pinned snapshot: the starting state of a new subscription, or the
/// replacement state of a lapsed subscriber's rebase.
#[derive(Debug, Clone)]
pub struct Materialization {
    /// Snapshot LSN the image was scanned at.
    pub lsn: Lsn,
    /// Leading key columns of every row.
    pub key_width: usize,
    /// Rows in `[view key | projected output]` layout.
    pub rows: RowBuf,
}

/// What a drain produced.
#[derive(Debug)]
pub enum Drained {
    /// The sets committed since the cursor, oldest first (possibly none).
    /// Shared allocations: every subscriber of the same evaluation group
    /// drains clones of the same `Arc`s.
    Updates(Vec<Arc<UpdateSet>>),
    /// The subscriber lagged past the retained ring: its state is stale
    /// beyond repair by streaming, so here is a fresh full image (from a
    /// snapshot pin) to replace it with.
    Rebase(Materialization),
}

/// How a [`crate::FeedHub::resume`] request was satisfied.
#[derive(Debug)]
pub enum Resumed {
    /// The ring still covers `from_lsn`: keep the existing state and simply
    /// drain.
    Stream,
    /// The ring no longer covers `from_lsn`, but the snapshot registry
    /// could still pin it: a synthetic net update set moving a state at
    /// `from_lsn` directly to the set's LSN (the diff of the two pinned
    /// images).
    CatchUp(Arc<UpdateSet>),
    /// `from_lsn` is below the snapshot floor — reclamation already freed
    /// it. Full replacement image instead.
    Rebase(Materialization),
}

/// Reference client-side state of one subscription: `view key → projected
/// row`. Tests and benches use it as the differential instrument — after
/// applying a subscriber's stream, [`SubscriberState::state_bytes`] must
/// byte-equal the same encoding of a fresh filtered scan of the pinned
/// snapshot at the same LSN.
#[derive(Debug, Clone)]
pub struct SubscriberState {
    key_width: usize,
    rows: FxHashMap<Vec<Datum>, Row>,
}

impl SubscriberState {
    /// Start from an initial (or rebase) materialization.
    pub fn new(image: &Materialization) -> Self {
        let mut s = SubscriberState {
            key_width: image.key_width,
            rows: fx_map_with_capacity(image.rows.len()),
        };
        s.rebase(image);
        s
    }

    /// Replace the whole state with a fresh image.
    pub fn rebase(&mut self, image: &Materialization) {
        self.key_width = image.key_width;
        self.rows.clear();
        for row in image.rows.iter() {
            self.rows.insert(
                row[..image.key_width].to_vec(),
                row[image.key_width..].to_vec(),
            );
        }
    }

    /// Apply one net update set (deletes, then inserts).
    pub fn apply(&mut self, set: &UpdateSet) {
        for key in set.deletes.iter() {
            self.rows.remove(key);
        }
        for row in set.inserts.iter() {
            self.rows
                .insert(row[..set.key_width].to_vec(), row[set.key_width..].to_vec());
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Projected row for a key, if present.
    pub fn get(&self, key: &[Datum]) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Canonical encoding: row count, then `(key, projected row)` pairs
    /// sorted by key. Two states holding the same mapping are byte-equal
    /// regardless of the order updates arrived in.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut keys: Vec<&Vec<Datum>> = self.rows.keys().collect();
        keys.sort();
        let mut buf = Vec::new();
        put_u64(&mut buf, self.rows.len() as u64); // lint:allow(cast) — usize widens into u64
        for key in keys {
            put_row(&mut buf, key).expect("keys fit u32 framing");
            put_row(&mut buf, &self.rows[key]).expect("rows fit u32 framing");
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(lsn: Lsn, rows: &[(i64, i64)]) -> Materialization {
        let mut buf = RowBuf::new(2);
        for &(k, v) in rows {
            buf.push_row(&[Datum::Int(k), Datum::Int(v)]);
        }
        Materialization {
            lsn,
            key_width: 1,
            rows: buf,
        }
    }

    #[test]
    fn apply_deletes_then_inserts() {
        let mut s = SubscriberState::new(&image(1, &[(1, 10), (2, 20)]));
        let mut set = UpdateSet::empty(2, 1, 1);
        // UPDATE of key 1 decomposed: delete then re-insert with a new value.
        set.deletes.push_row(&[Datum::Int(1)]);
        set.inserts.push_row(&[Datum::Int(1), Datum::Int(11)]);
        // Plain delete of key 2, plain insert of key 3.
        set.deletes.push_row(&[Datum::Int(2)]);
        set.inserts.push_row(&[Datum::Int(3), Datum::Int(30)]);
        s.apply(&set);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&[Datum::Int(1)]), Some(&vec![Datum::Int(11)]));
        assert_eq!(s.get(&[Datum::Int(2)]), None);
        assert_eq!(s.get(&[Datum::Int(3)]), Some(&vec![Datum::Int(30)]));
    }

    #[test]
    fn state_bytes_is_order_independent() {
        let a = SubscriberState::new(&image(1, &[(1, 10), (2, 20), (3, 30)]));
        let b = SubscriberState::new(&image(9, &[(3, 30), (1, 10), (2, 20)]));
        assert_eq!(a.state_bytes(), b.state_bytes());
        let c = SubscriberState::new(&image(1, &[(1, 10), (2, 21), (3, 30)]));
        assert_ne!(a.state_bytes(), c.state_bytes());
    }

    #[test]
    fn rebase_replaces_everything() {
        let mut s = SubscriberState::new(&image(1, &[(1, 10), (2, 20)]));
        s.rebase(&image(5, &[(7, 70)]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[Datum::Int(7)]), Some(&vec![Datum::Int(70)]));
    }
}
