//! Errors of the change-feed layer.

use std::fmt;

use ojv_core::prelude::CoreError;

/// Errors raised by subscription management and fan-out.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedError {
    /// An underlying snapshot/registry error (e.g. a catch-up pin below the
    /// reclamation floor surfaces as `Core(SnapshotUnavailable)`).
    Core(CoreError),
    /// The hub is not attached to a database yet.
    NotAttached,
    /// The subscribed view is not registered (or was dropped).
    UnknownView { view: String },
    /// A filter or projection references an output column the view does not
    /// have.
    BadColumn {
        view: String,
        column: usize,
        width: usize,
    },
    /// The subscriber id is unknown (already unsubscribed, or from another
    /// hub).
    UnknownSubscriber { id: u64 },
    /// A fan-out job panicked on a worker thread. The panic is caught at
    /// the job boundary: sibling groups still publish, the affected group's
    /// subscribers lapse (their next drain rebases from a snapshot), and
    /// the panic surfaces here instead of poisoning the process.
    FanoutPanic { view: String, detail: String },
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Core(e) => write!(f, "{e}"),
            FeedError::NotAttached => {
                write!(f, "feed hub is not attached to a database")
            }
            FeedError::UnknownView { view } => write!(f, "unknown view {view}"),
            FeedError::BadColumn {
                view,
                column,
                width,
            } => write!(
                f,
                "subscription on {view} references output column {column}, \
                 but the view has {width} columns"
            ),
            FeedError::UnknownSubscriber { id } => write!(f, "unknown subscriber {id}"),
            FeedError::FanoutPanic { view, detail } => {
                write!(f, "fan-out for view {view} panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for FeedError {}

impl From<CoreError> for FeedError {
    fn from(e: CoreError) -> Self {
        FeedError::Core(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, FeedError>;
