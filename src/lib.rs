//! Facade crate for the outer-join view maintenance workspace.
//!
//! Re-exports the public API of every workspace crate so applications (and
//! the `examples/` binaries) can depend on a single crate:
//!
//! ```
//! use ojv::rel::Datum;
//! use ojv::storage::Catalog;
//!
//! let _ = (Datum::Int(1), Catalog::new());
//! ```

#![forbid(unsafe_code)]

pub use ojv_algebra as algebra;
pub use ojv_analysis as analysis;
pub use ojv_core as core;
pub use ojv_durability as durability;
pub use ojv_exec as exec;
pub use ojv_feed as feed;
pub use ojv_rel as rel;
pub use ojv_storage as storage;
pub use ojv_tpch as tpch;

pub use ojv_core::prelude;
pub use ojv_core::prelude::*;
