//! Quickstart: the paper's Example 1 end-to-end.
//!
//! Builds the part/orders/lineitem schema, creates the materialized
//! outer-join view `oj_view`, and shows the maintenance behaviour the paper
//! opens with: part/orders inserts are pure view inserts thanks to foreign
//! keys, while a lineitem insert can delete two orphans at once.
//!
//! Run with: `cargo run --example quickstart`

use ojv::core::fixtures;
use ojv::prelude::*;

fn print_view(db: &Database) {
    let view = db.view("oj_view").expect("view exists");
    println!("oj_view ({} rows):", view.len());
    let out = view.output().expect("projection forms a valid schema");
    for row in out.rows() {
        println!("  {}", ojv::rel::row_display(row));
    }
    println!();
}

fn main() -> Result<()> {
    // Schema with foreign keys lineitem→part and lineitem→orders.
    let mut catalog = fixtures::example1_catalog();
    catalog.insert(
        "part",
        vec![
            fixtures::part_row(1, "bolt", 100.0),
            fixtures::part_row(2, "nut", 150.0),
        ],
    )?;
    catalog.insert(
        "orders",
        vec![fixtures::order_row(10, 7), fixtures::order_row(11, 8)],
    )?;
    catalog.insert("lineitem", vec![fixtures::lineitem_row(10, 1, 1, 5, 10.0)])?;

    let mut db = Database::new(catalog);

    // create view oj_view as
    //   select ... from part
    //   full outer join (orders left outer join lineitem
    //                    on l_orderkey = o_orderkey)
    //   on p_partkey = l_partkey
    db.create_view(fixtures::oj_view_def())?;
    println!("== initial contents: one full tuple, one orphaned order, one orphaned part");
    print_view(&db);

    println!("== insert a part: the FK fast path turns maintenance into a plain view insert");
    let reports = db.insert("part", vec![fixtures::part_row(3, "washer", 20.0)])?;
    println!(
        "   primary delta rows: {}, secondary: {}\n",
        reports[0].primary_rows, reports[0].secondary_rows
    );
    print_view(&db);

    println!("== insert a lineitem that adopts BOTH orphans (order 11 and part 2)");
    let reports = db.insert("lineitem", vec![fixtures::lineitem_row(11, 1, 2, 3, 4.5)])?;
    println!(
        "   primary delta rows: {}, secondary (orphans deleted): {}\n",
        reports[0].primary_rows, reports[0].secondary_rows
    );
    print_view(&db);

    println!("== delete it again: the orphans come back");
    db.delete("lineitem", &[vec![Datum::Int(11), Datum::Int(1)]])?;
    print_view(&db);

    Ok(())
}
