//! A minimal interactive shell over the engine, showcasing the SQL parser
//! and live incremental maintenance.
//!
//! ```text
//! cargo run --release --example ojv_shell
//! ojv> create view v as select * from part full outer join (orders left outer join lineitem on l_orderkey = o_orderkey) on p_partkey = l_partkey
//! ojv> insert lineitem 3 1 2 9 42.5
//! maintained v: ΔV^D=1 ΔV^I=2 in 38µs
//! ojv> show v
//! ojv> explain v lineitem insert
//! ojv> quit
//! ```
//!
//! Commands:
//! * `create view <name> as <select-statement>` — parse + materialize,
//! * `insert <table> <values…>` / `delete <table> <key values…>`,
//! * `show <view>` (first 20 rows), `tables`, `views`,
//! * `explain <view> <table> insert|delete` — the Q1–Q4 maintenance SQL,
//! * `quit`.
//!
//! Pipe a script in for non-interactive use:
//! `printf 'tables\nquit\n' | cargo run --example ojv_shell`.

use std::io::{BufRead, Write};

use ojv::core::fixtures;
use ojv::prelude::*;
use ojv::rel::{DataType, Datum};
use ojv::storage::UpdateOp;

fn parse_values(catalog: &Catalog, table: &str, parts: &[&str]) -> Result<Vec<Datum>> {
    let t = catalog.table(table).map_err(CoreError::Storage)?;
    let schema = t.schema().clone();
    if parts.len() != schema.len() {
        return Err(CoreError::InvalidView {
            view: table.into(),
            detail: format!("{} values expected, got {}", schema.len(), parts.len()),
        });
    }
    parts
        .iter()
        .zip(schema.columns())
        .map(|(raw, col)| {
            if raw.eq_ignore_ascii_case("null") {
                return Ok(Datum::Null);
            }
            Ok(match col.ty {
                DataType::Int => Datum::Int(raw.parse().map_err(|_| CoreError::InvalidView {
                    view: table.into(),
                    detail: format!("bad int {raw}"),
                })?),
                DataType::Float => {
                    Datum::Float(raw.parse().map_err(|_| CoreError::InvalidView {
                        view: table.into(),
                        detail: format!("bad float {raw}"),
                    })?)
                }
                DataType::Str => Datum::str(*raw),
                DataType::Date => ojv::rel::datum::date(raw),
                DataType::Bool => Datum::Bool(raw.eq_ignore_ascii_case("true")),
            })
        })
        .collect()
}

fn key_values(catalog: &Catalog, table: &str, parts: &[&str]) -> Result<Vec<Datum>> {
    let t = catalog.table(table).map_err(CoreError::Storage)?;
    let key_cols = t.key_cols().to_vec();
    if parts.len() != key_cols.len() {
        return Err(CoreError::InvalidView {
            view: table.into(),
            detail: format!(
                "{} key values expected, got {}",
                key_cols.len(),
                parts.len()
            ),
        });
    }
    let schema = t.schema().clone();
    parts
        .iter()
        .zip(&key_cols)
        .map(|(raw, &c)| {
            Ok(match schema.column(c).ty {
                DataType::Int => Datum::Int(raw.parse().map_err(|_| CoreError::InvalidView {
                    view: table.into(),
                    detail: format!("bad int {raw}"),
                })?),
                _ => Datum::str(*raw),
            })
        })
        .collect()
}

fn run_line(db: &mut Database, line: &str) -> Result<bool> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(true);
    }
    let lower = trimmed.to_ascii_lowercase();
    if lower == "quit" || lower == "exit" {
        return Ok(false);
    }
    if lower == "tables" {
        for t in db.catalog().tables() {
            println!("  {} ({} rows)", t.name(), t.len());
        }
    } else if lower == "views" {
        for v in db.views() {
            println!(
                "  {} ({} rows, {} terms)",
                v.name(),
                v.len(),
                v.analysis.terms.len()
            );
        }
    } else if let Some(rest) = strip_prefix_ci(trimmed, "create view ") {
        let Some((name, sql)) = rest.split_once(" as ") else {
            println!("usage: create view <name> as <select…>");
            return Ok(true);
        };
        db.create_view_sql(name.trim(), sql.trim())?;
        let v = db.view(name.trim()).expect("just created");
        println!("created {} with {} rows", v.name(), v.len());
    } else if let Some(rest) = strip_prefix_ci(trimmed, "insert ") {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let (table, vals) = parts.split_first().expect("non-empty insert");
        let row = parse_values(db.catalog(), table, vals)?;
        let reports = db.insert(table, vec![row])?;
        for r in &reports {
            println!(
                "maintained {}: ΔV^D={} ΔV^I={} in {:?}",
                r.view,
                r.primary_rows,
                r.secondary_rows,
                r.total_time()
            );
        }
    } else if let Some(rest) = strip_prefix_ci(trimmed, "delete ") {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let (table, vals) = parts.split_first().expect("non-empty delete");
        let key = key_values(db.catalog(), table, vals)?;
        let reports = db.delete(table, &[key])?;
        for r in &reports {
            println!(
                "maintained {}: ΔV^D={} ΔV^I={} in {:?}",
                r.view,
                r.primary_rows,
                r.secondary_rows,
                r.total_time()
            );
        }
    } else if let Some(rest) = strip_prefix_ci(trimmed, "show ") {
        match db.view(rest.trim()) {
            Some(v) => match v.output() {
                Ok(out) => {
                    println!("{} ({} rows, first 20):", v.name(), out.len());
                    for row in out.rows().iter().take(20) {
                        println!("  {}", ojv::rel::row_display(row));
                    }
                }
                Err(e) => println!("cannot render {}: {e}", v.name()),
            },
            None => println!("no view named {rest}"),
        }
    } else if let Some(rest) = strip_prefix_ci(trimmed, "explain ") {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        if parts.len() != 3 {
            println!("usage: explain <view> <table> insert|delete");
            return Ok(true);
        }
        let op = if parts[2].eq_ignore_ascii_case("delete") {
            UpdateOp::Delete
        } else {
            UpdateOp::Insert
        };
        println!("{}", db.explain_maintenance(parts[0], parts[1], op)?);
    } else {
        println!(
            "commands: create view … as …, insert, delete, show, tables, views, explain, quit"
        );
    }
    Ok(true)
}

fn strip_prefix_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len() && s[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

fn main() {
    let mut catalog = fixtures::example1_catalog();
    fixtures::populate_example1(&mut catalog, 8, 9);
    let mut db = Database::new(catalog);
    println!("ojv shell — Example 1 schema loaded (part, orders, lineitem). Type a command.");

    let stdin = std::io::stdin();
    loop {
        print!("ojv> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match run_line(&mut db, &line) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => println!("error: {e}"),
            },
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
}
