//! A guided tour of the paper's machinery on the running example V1:
//! normal form (§2.2), subsumption graph (§2.3), maintenance graphs (§3.1),
//! primary-delta derivation (§4), left-deep conversion (§4.1), and
//! `SimplifyTree` (§6.1).
//!
//! Run with: `cargo run --example algorithm_tour`

use ojv::algebra::{FkEdge, TableId};
use ojv::core::analyze::analyze;
use ojv::core::fixtures;
use ojv::prelude::*;

fn main() -> Result<()> {
    let catalog = fixtures::v1_catalog();
    let a = analyze(&catalog, &fixtures::v1_view_def())?;
    let names = |t: TableId| a.layout.slot(t).name.to_uppercase();

    println!("V1 = (R fo S) lo (T fo U)\n");
    println!("== join-disjunctive normal form (paper Example 2):");
    for term in &a.terms {
        let labels: Vec<String> = term.tables.iter().map(names).collect();
        println!("  σ[{}]({})", term.pred, labels.join(" × "));
    }

    println!("\n== subsumption graph (Figure 1(a)):");
    print!("{}", a.graph);

    println!("\n== maintenance graphs per updated table:");
    for name in ["r", "s", "t", "u"] {
        let t = a.layout.table_id(name).expect("V1 table");
        let m = a.maintenance_graph(t, false);
        println!("  {m}");
    }

    let t = a.layout.table_id("t").expect("table t");
    println!("\n== ΔV1^D derivation for an update of T (Example 3):");
    let bushy = a.primary_delta_plan(t, false, false);
    print!("{}", bushy.tree_string(&|id| names(id)));

    println!("== after left-deep conversion (Example 4 / Figure 3(b)):");
    let left_deep = a.primary_delta_plan(t, false, true);
    print!("{}", left_deep.tree_string(&|id| names(id)));

    println!("== Example 10: add FK U.jc → T.jc?");
    println!("   (the paper uses U.fk → T.pk; here we show SimplifyTree's effect");
    println!("    with a synthetic FK matching the T–U join predicate)");
    let u = a.layout.table_id("u").expect("table u");
    let fk = FkEdge {
        child: u,
        child_cols: vec![1], // u.jc
        parent: t,
        parent_cols: vec![1], // t.jc — pretend it is a unique key for the demo
        child_cols_non_null: true,
        cascade_delete: false,
        deferrable: false,
    };
    let simplified =
        ojv::algebra::simplify_tree(ojv::algebra::derive_primary_delta(&a.expr, t), t, &[fk]);
    print!(
        "{}",
        ojv::algebra::to_left_deep(simplified).tree_string(&|id| names(id))
    );
    println!("   — the ΔT lo U join is gone: no ΔT row can have U children.");
    Ok(())
}
