//! Tree-structured object construction — the paper's second motivation:
//! "Outer-join queries are also used for constructing tree-structured
//! objects (e.g. XML) from data stored in flat tables. Outer joins are
//! needed so we can also retain objects that lack some subobjects."
//!
//! A materialized view assembles product "pages": every part, left-outer-
//! joined to its supplier offers. Parts with no offers still get a page.
//! The view is maintained incrementally as offers appear and disappear, and
//! rendered as nested XML-ish documents.
//!
//! Run with: `cargo run --release --example catalog_pages`

use std::collections::BTreeMap;

use ojv::prelude::*;

/// `(supplier key, supplier name, supply cost)`.
type Offer = (i64, String, f64);
/// `(part name, retail price, offers)`.
type Page = (String, f64, Vec<Offer>);
use ojv::tpch::{create_tpch_catalog, TpchGen};

/// `part lo (partsupp ⋈ supplier)` — each part keeps its page even with no
/// offers (subobjects).
fn pages_view() -> ViewDef {
    ViewDef::new(
        "pages",
        ViewExpr::left_outer(
            vec![col_eq("part", "p_partkey", "partsupp", "ps_partkey")],
            ViewExpr::table("part"),
            ViewExpr::inner(
                vec![col_eq("partsupp", "ps_suppkey", "supplier", "s_suppkey")],
                ViewExpr::table("partsupp"),
                ViewExpr::table("supplier"),
            ),
        ),
    )
    .with_projection(vec![
        ("part", "p_partkey"),
        ("part", "p_name"),
        ("part", "p_retailprice"),
        ("partsupp", "ps_suppkey"),
        ("partsupp", "ps_supplycost"),
        ("supplier", "s_suppkey"),
        ("supplier", "s_name"),
    ])
}

/// Render a handful of part pages as nested documents.
fn render_pages(db: &Database, keys: &[i64]) {
    let view = db.view("pages").expect("view exists");
    let out = view.output().expect("projection forms a valid schema");
    let mut pages: BTreeMap<i64, Page> = BTreeMap::new();
    for row in out.rows() {
        let Some(pk) = row[0].as_int() else { continue };
        if !keys.contains(&pk) {
            continue;
        }
        let entry = pages.entry(pk).or_insert_with(|| {
            (
                row[1].as_str().unwrap_or("?").to_string(),
                row[2].as_float().unwrap_or(0.0),
                Vec::new(),
            )
        });
        if let Some(suppkey) = row[5].as_int() {
            entry.2.push((
                suppkey,
                row[6].as_str().unwrap_or("?").to_string(),
                row[4].as_float().unwrap_or(0.0),
            ));
        }
    }
    for (pk, (name, price, mut offers)) in pages {
        offers.sort_by_key(|o| o.0);
        println!("  <part key=\"{pk}\" name=\"{name}\" retail=\"{price:.2}\">");
        if offers.is_empty() {
            println!("    <!-- no offers: object retained without subobjects -->");
        }
        for (sk, sname, cost) in offers {
            println!("    <offer supplier=\"{sk}\" name=\"{sname}\" cost=\"{cost:.2}\"/>");
        }
        println!("  </part>");
    }
}

fn main() -> Result<()> {
    let gen = TpchGen::new(0.002, 7);
    let mut catalog = create_tpch_catalog().expect("TPC-H schema");
    gen.populate(&mut catalog).expect("TPC-H data");
    // Add one part with no offers at all.
    let lonely = gen.part_count() + 1;
    catalog.insert(
        "part",
        vec![vec![
            Datum::Int(lonely),
            Datum::str("unloved widget"),
            Datum::str("Manufacturer#9"),
            Datum::str("Brand#99"),
            Datum::str("PROMO POLISHED TIN"),
            Datum::Int(1),
            Datum::str("SM BOX"),
            Datum::Float(TpchGen::retail_price(lonely)),
            Datum::str("no offers yet"),
        ]],
    )?;

    let mut db = Database::new(catalog);
    db.create_view(pages_view())?;
    let demo_keys = [1i64, 2, lonely];

    println!("== initial pages (note the offer-less part keeps its page):");
    render_pages(&db, &demo_keys);

    println!("\n== a supplier starts offering the unloved widget:");
    let reports = db.insert(
        "partsupp",
        vec![vec![
            Datum::Int(lonely),
            Datum::Int(1),
            Datum::Int(100),
            Datum::Float(12.5),
            Datum::str("fresh offer"),
        ]],
    )?;
    println!(
        "  maintenance: ΔV^D={} rows, orphans removed={}",
        reports[0].primary_rows, reports[0].secondary_rows
    );
    render_pages(&db, &demo_keys);

    println!("\n== the offer is withdrawn; the page survives, empty again:");
    db.delete("partsupp", &[vec![Datum::Int(lonely), Datum::Int(1)]])?;
    render_pages(&db, &demo_keys);

    println!(
        "\npages view: {} rows over {} parts — maintained incrementally.",
        db.view("pages").expect("view").len(),
        db.catalog().table("part").expect("part").len()
    );
    Ok(())
}
