//! A data-warehousing scenario: a "revenue dashboard" kept fresh by
//! incremental view maintenance while the operational tables churn.
//!
//! Two materialized views over a TPC-H database:
//! * `v3` — the paper's outer-join view (customers and parts retained even
//!   without matching orders, so the dashboard can show inactive customers
//!   and unsold parts),
//! * `rev_by_customer` — an aggregated outer-join view (§3.3) rolling V3 up
//!   to revenue per customer.
//!
//! The simulated "business day" replays TPC-H refresh streams; every batch
//! is maintained incrementally and the dashboard is re-read in between.
//!
//! Run with: `cargo run --release --example warehouse_dashboard`

use ojv::core::agg_view::{AggSpec, AggViewDef};
use ojv::prelude::*;
use ojv::rel::datum::date;
use ojv::tpch::{create_tpch_catalog, TpchGen};

fn v3() -> ViewDef {
    ViewDef::new(
        "v3",
        ViewExpr::full_outer(
            vec![
                col_eq("lineitem", "l_partkey", "part", "p_partkey"),
                col_cmp("part", "p_retailprice", CmpOp::Lt, 2000.0),
            ],
            ViewExpr::right_outer(
                vec![col_eq("customer", "c_custkey", "orders", "o_custkey")],
                ViewExpr::inner(
                    vec![
                        col_eq("lineitem", "l_orderkey", "orders", "o_orderkey"),
                        col_between(
                            "orders",
                            "o_orderdate",
                            date("1994-06-01"),
                            date("1994-12-31"),
                        ),
                    ],
                    ViewExpr::table("lineitem"),
                    ViewExpr::table("orders"),
                ),
                ViewExpr::table("customer"),
            ),
            ViewExpr::table("part"),
        ),
    )
}

fn dashboard(db: &Database) {
    let agg = db.agg_view("rev_by_customer").expect("agg view exists");
    let out = agg.output();
    let mut rows: Vec<_> = out.rows().to_vec();
    // Sort by revenue (last column) descending, nulls last.
    rows.sort_by(|a, b| {
        let ra = a.last().expect("revenue column");
        let rb = b.last().expect("revenue column");
        rb.cmp(ra)
    });
    println!(
        "  top-5 customers by in-window revenue ({} groups):",
        out.len()
    );
    for row in rows.iter().take(5) {
        println!("    {}", ojv::rel::row_display(row));
    }
}

fn main() -> Result<()> {
    let gen = TpchGen::new(0.01, 2024);
    let mut catalog = create_tpch_catalog().expect("TPC-H schema");
    println!("loading TPC-H SF={} ...", gen.sf);
    gen.populate(&mut catalog).expect("TPC-H data");
    let mut db = Database::new(catalog);

    println!("materializing views ...");
    db.create_view(v3())?;
    db.create_agg_view(
        AggViewDef::new("rev_by_customer", v3())
            .group_by("customer", "c_custkey")
            .agg("rows", AggSpec::CountRows)
            .agg(
                "lines",
                AggSpec::CountNonNull {
                    table: "lineitem".into(),
                    column: "l_orderkey".into(),
                },
            )
            .agg(
                "revenue",
                AggSpec::Sum {
                    table: "lineitem".into(),
                    column: "l_extendedprice".into(),
                },
            ),
    )?;
    println!("v3: {} rows", db.view("v3").expect("v3").len());
    dashboard(&db);

    println!("\n== morning: 500 new lineitems arrive");
    let rows = gen.lineitem_insert_batch(500, 0);
    let reports = db.insert("lineitem", rows)?;
    for r in &reports {
        println!(
            "  maintained {:<18} ΔV^D={:<5} ΔV^I={:<4} in {:?}",
            r.view,
            r.primary_rows,
            r.secondary_rows,
            r.total_time()
        );
    }
    dashboard(&db);

    println!("\n== noon: 60 new orders placed (RF1)");
    let (orders, lines) = gen.order_insert_batch(60, 1);
    let r1 = db.insert("orders", orders)?;
    println!(
        "  orders insert touched {} views (FK: V3 is unaffected)",
        r1.len()
    );
    db.insert("lineitem", lines)?;
    dashboard(&db);

    println!("\n== evening: archival deletes 300 old lineitems");
    let keys = gen.lineitem_delete_keys(300, 7);
    let live: Vec<_> = keys
        .into_iter()
        .filter(|k| {
            db.catalog()
                .table("lineitem")
                .expect("lineitem")
                .get(k)
                .is_some()
        })
        .collect();
    let reports = db.delete("lineitem", &live)?;
    for r in &reports {
        println!(
            "  maintained {:<18} ΔV^D={:<5} ΔV^I={:<4} in {:?}",
            r.view,
            r.primary_rows,
            r.secondary_rows,
            r.total_time()
        );
    }
    dashboard(&db);

    println!(
        "\nv3 final size: {} rows — all maintained incrementally.",
        db.view("v3").expect("v3").len()
    );
    Ok(())
}
